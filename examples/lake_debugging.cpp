// Data-lake debugging: when a source table can only be *partially*
// reclaimed, the per-cell diff between the source and the reclamation
// tells the analyst whether the gap is missing data (nulls the lake
// simply doesn't have) or contradicting data (the lake disagrees) —
// Example 2 of the paper.
//
// This example builds a TP-TR-style benchmark, reclaims one source, and
// prints the cell-level diagnosis.
//
//   $ ./build/examples/lake_debugging

#include <cstdio>

#include "src/benchgen/benchmarks.h"
#include "src/gent/gent.h"
#include "src/metrics/precision_recall.h"
#include "src/metrics/similarity.h"

using namespace gent;

int main() {
  TpTrConfig cfg = TpTrSmallConfig();
  // Crank the damage so the reclamation is visibly partial.
  cfg.variants.null_rate = 0.7;
  cfg.variants.error_rate = 0.7;
  auto bench = MakeTpTrBenchmark("debug", cfg);
  if (!bench.ok()) {
    std::fprintf(stderr, "benchmark build failed\n");
    return 1;
  }

  GenT gent(*bench->lake);
  const Table& source = bench->sources[0].source;
  auto r = gent.Reclaim(source);
  if (!r.ok()) {
    std::fprintf(stderr, "reclamation failed\n");
    return 1;
  }
  const Table& reclaimed = r->reclaimed;

  auto pr = ComputePrecisionRecall(source, reclaimed);
  std::printf("Source '%s' (%zu rows): EIS %.3f, recall %.3f\n\n",
              bench->sources[0].description.c_str(), source.num_rows(),
              EisScore(source, reclaimed).value_or(0), pr.recall);

  // Per-cell diagnosis over the best aligned tuple of each source row.
  KeyIndex aligned;
  std::vector<size_t> rcol(source.num_cols());
  for (size_t c = 0; c < source.num_cols(); ++c) {
    rcol[c] = *reclaimed.ColumnIndex(source.column_name(c));
  }
  for (size_t row = 0; row < reclaimed.num_rows(); ++row) {
    KeyTuple k;
    for (size_t kc : source.key_columns()) {
      k.push_back(reclaimed.cell(row, rcol[kc]));
    }
    aligned[k].push_back(row);
  }

  size_t unreclaimed_rows = 0, missing_cells = 0, contradicting = 0;
  for (size_t sr = 0; sr < source.num_rows(); ++sr) {
    auto it = aligned.find(source.KeyOf(sr));
    if (it == aligned.end()) {
      ++unreclaimed_rows;
      std::printf("row %-3zu NOT DERIVABLE from the lake (key %s)\n", sr,
                  source.CellString(sr, source.key_columns()[0]).c_str());
      continue;
    }
    // Best aligned tuple: most matching cells.
    size_t best = it->second[0], best_match = 0;
    for (size_t rr : it->second) {
      size_t m = 0;
      for (size_t c = 0; c < source.num_cols(); ++c) {
        m += reclaimed.cell(rr, rcol[c]) == source.cell(sr, c);
      }
      if (m > best_match) {
        best_match = m;
        best = rr;
      }
    }
    for (size_t c = 0; c < source.num_cols(); ++c) {
      ValueId sv = source.cell(sr, c);
      ValueId rv = reclaimed.cell(best, rcol[c]);
      if (sv == rv) continue;
      if (rv == kNull) {
        ++missing_cells;
      } else {
        ++contradicting;
        std::printf("row %-3zu col %-18s lake says '%s', source says '%s'\n",
                    sr, source.column_name(c).c_str(),
                    reclaimed.CellString(best, rcol[c]).c_str(),
                    source.CellString(sr, c).c_str());
      }
    }
  }
  std::printf(
      "\nDiagnosis: %zu source rows not derivable, %zu cells missing from "
      "the lake,\n%zu cells where the lake contradicts the source.\n",
      unreclaimed_rows, missing_cells, contradicting);
  std::printf(
      "Missing cells mean incomplete lake data; contradictions deserve a\n"
      "closer look at the originating tables (%zu returned).\n",
      r->originating.size());
  return 0;
}
