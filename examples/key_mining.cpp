// Key mining: discover a source table's key before reclaiming it.
//
// The paper assumes every source table has a (possibly multi-attribute)
// key found "using existing mining techniques" (§II). This example runs
// that step: it mines candidate keys for a keyless source — including a
// table whose only key is composite — installs the best one, and then
// reclaims the source as usual.
//
//   $ ./build/examples/key_mining

#include <cstdio>

#include "src/gent/gent.h"
#include "src/keymining/key_miner.h"
#include "src/metrics/similarity.h"
#include "src/table/table_builder.h"

using namespace gent;

namespace {

void PrintCandidates(const Table& table,
                     const std::vector<CandidateKey>& keys) {
  std::printf("candidate keys of '%s':\n", table.name().c_str());
  for (const CandidateKey& key : keys) {
    std::printf("  {");
    for (size_t i = 0; i < key.columns.size(); ++i) {
      std::printf("%s%s", i ? ", " : "",
                  table.column_name(key.columns[i]).c_str());
    }
    std::printf("}  score=%.3f  unique=%.2f  non-null=%.2f\n", key.score,
                key.uniqueness, key.non_null_fraction);
  }
}

}  // namespace

int main() {
  DataLake lake;
  const DictionaryPtr& dict = lake.dict();

  // A source about course enrollments: neither student nor course is
  // unique alone — the key is the pair.
  Table source = TableBuilder(dict, "enrollments")
                     .Columns({"student", "course", "grade", "credits"})
                     .Row({"ada", "db101", "A", "4"})
                     .Row({"ada", "os201", "B", "3"})
                     .Row({"bob", "db101", "B", "4"})
                     .Row({"bob", "ml301", "A", "3"})
                     .Build();

  KeyMiner miner;
  std::vector<CandidateKey> keys = miner.Mine(source);
  PrintCandidates(source, keys);
  if (Status s = miner.AssignBestKey(source); !s.ok()) {
    std::fprintf(stderr, "no key found: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("\ninstalled key: {");
  for (size_t i = 0; i < source.key_columns().size(); ++i) {
    std::printf("%s%s", i ? ", " : "",
                source.column_name(source.key_columns()[i]).c_str());
  }
  std::printf("}\n\n");

  // A lake that can reconstruct the source from two fragments.
  (void)lake.AddTable(TableBuilder(dict, "grades")
                          .Columns({"student", "course", "grade"})
                          .Row({"ada", "db101", "A"})
                          .Row({"ada", "os201", "B"})
                          .Row({"bob", "db101", "B"})
                          .Row({"bob", "ml301", "A"})
                          .Build());
  (void)lake.AddTable(TableBuilder(dict, "catalog")
                          .Columns({"student", "course", "credits"})
                          .Row({"ada", "db101", "4"})
                          .Row({"ada", "os201", "3"})
                          .Row({"bob", "db101", "4"})
                          .Row({"bob", "ml301", "3"})
                          .Build());

  GenT gent(lake);
  auto result = gent.Reclaim(source);
  if (!result.ok()) {
    std::fprintf(stderr, "reclamation failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  std::printf("reclaimed with EIS %.3f using %zu originating tables\n",
              EisScore(source, result->reclaimed).value(),
              result->originating.size());
  std::printf("%s\n", result->reclaimed.ToString().c_str());
  return 0;
}
