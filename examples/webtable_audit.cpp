// Web-table provenance audit (the paper's §VI-D generalizability
// scenario): given a corpus of web tables with no known provenance,
// iterate each table as a potential Source and ask whether the *rest* of
// the corpus can reclaim it.
//
// Three verdicts per table:
//   DUPLICATE    reclaimed perfectly from a single other table
//   DERIVED      reclaimed perfectly by integrating several tables
//   INDEPENDENT  not reclaimable from the rest of the corpus
//
//   $ ./build/examples/webtable_audit

#include <cstdio>

#include "src/benchgen/web_tables.h"
#include "src/gent/gent.h"
#include "src/metrics/precision_recall.h"

using namespace gent;

int main() {
  DataLake lake;
  WebCorpusConfig cfg;
  cfg.num_tables = 60;  // small corpus so the audit runs in seconds
  cfg.duplicate_clusters = 3;
  cfg.partitioned_groups = 2;
  WebCorpus corpus = GenerateWebCorpus(lake.dict(), cfg);
  for (auto& t : corpus.tables) {
    (void)lake.AddTable(std::move(t));
  }
  std::printf("Corpus: %zu web tables (ground truth: %zu duplicates, "
              "%zu partitioned bases)\n\n",
              lake.size(), corpus.duplicate_tables.size(),
              corpus.partitioned_bases.size());

  size_t duplicates = 0, derived = 0, independent = 0;
  for (size_t i = 0; i < lake.size(); ++i) {
    const Table& source = lake.table(i);
    GenTConfig gcfg;
    gcfg.discovery.exclude_table = source.name();  // leave-one-out
    GenT gent(lake, gcfg);
    auto r = gent.Reclaim(source, OpLimits::WithTimeout(5));
    if (!r.ok()) {
      ++independent;
      continue;
    }
    if (IsPerfectReclamation(source, r->reclaimed)) {
      if (r->originating.size() == 1) {
        ++duplicates;
        std::printf("DUPLICATE   %-16s ≡ %s\n", source.name().c_str(),
                    r->originating_names[0].c_str());
      } else {
        ++derived;
        std::printf("DERIVED     %-16s from %zu tables:", source.name().c_str(),
                    r->originating.size());
        for (const auto& n : r->originating_names) {
          std::printf(" %s", n.c_str());
        }
        std::printf("\n");
      }
    } else {
      ++independent;
    }
  }
  std::printf("\nVerdicts: %zu duplicates, %zu derived, %zu independent\n",
              duplicates, derived, independent);
  return 0;
}
