// Bulk reclamation + lake snapshots: the operational workflow.
//
// A team that reclaims dashboards nightly does not want to re-parse the
// lake's CSVs per run or reclaim sources one at a time. This example
// shows the production path: build a lake once, persist it as a binary
// snapshot, reload it (parse-free), build the ColumnStatsCatalog once,
// and reclaim a whole batch of source tables across a worker pool with
// GenT::ReclaimBatch — whose results are bit-identical to a serial run.
//
//   $ ./build/bulk_snapshot

#include <chrono>
#include <cstdio>

#include "src/benchgen/benchmarks.h"
#include "src/gent/gent.h"
#include "src/lake/snapshot.h"
#include "src/metrics/similarity.h"

using namespace gent;

namespace {

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

int main() {
  // A TP-TR-style playground: 32 lake tables, 6 keyed sources.
  TpTrConfig config = TpTrSmallConfig();
  config.queries.num_sources = 6;
  auto bench = MakeTpTrBenchmark("demo", config);
  if (!bench.ok()) {
    std::fprintf(stderr, "benchmark generation failed\n");
    return 1;
  }

  // Persist and reload the lake through a snapshot.
  const std::string snap = "/tmp/gent_bulk_demo.snap";
  if (Status s = SaveSnapshot(*bench->lake, snap); !s.ok()) {
    std::fprintf(stderr, "save: %s\n", s.ToString().c_str());
    return 1;
  }
  DataLake lake;
  auto t0 = std::chrono::steady_clock::now();
  if (Status s = LoadSnapshot(lake, snap); !s.ok()) {
    std::fprintf(stderr, "load: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("snapshot reload: %zu tables in %.3fs\n", lake.size(),
              SecondsSince(t0));

  // Reclaim all sources: sequential vs parallel, one shared catalog.
  std::vector<Table> sources;
  for (const SourceSpec& spec : bench->sources) {
    sources.push_back(spec.source.Clone());
  }
  GenT gent(lake);  // builds the ColumnStatsCatalog once
  std::vector<std::vector<Result<ReclamationResult>>> runs;
  for (size_t threads : {size_t{1}, size_t{4}}) {
    BatchOptions options;
    options.num_threads = threads;
    options.max_rows = 2'000'000;
    t0 = std::chrono::steady_clock::now();
    auto results = gent.ReclaimBatch(sources, options);
    const double elapsed = SecondsSince(t0);
    size_t ok = 0;
    double eis_sum = 0;
    for (size_t i = 0; i < results.size(); ++i) {
      if (!results[i].ok()) continue;
      ++ok;
      eis_sum += EisScore(sources[i], results[i]->reclaimed).value_or(0);
    }
    std::printf("%zu thread(s): %zu/%zu reclaimed, avg EIS %.3f, %.2fs\n",
                threads, ok, results.size(),
                ok ? eis_sum / static_cast<double>(ok) : 0.0, elapsed);
    runs.push_back(std::move(results));
  }

  // The batch contract: scheduling never changes the answer.
  bool identical = true;
  for (size_t i = 0; i < sources.size() && identical; ++i) {
    const auto& a = runs[0][i];
    const auto& b = runs[1][i];
    identical = a.ok() == b.ok() &&
                (!a.ok() || TablesBitIdentical(a->reclaimed, b->reclaimed));
  }
  std::printf("parallel results bit-identical to serial: %s\n",
              identical ? "yes" : "NO");
  std::remove(snap.c_str());
  return identical ? 0 : 1;
}
