// Bulk reclamation + lake snapshots: the operational workflow.
//
// A team that reclaims dashboards nightly does not want to re-parse the
// lake's CSVs per run or reclaim sources one at a time. This example
// shows the production path: build a lake once, persist it as a binary
// snapshot, reload it (parse-free), and reclaim a whole batch of source
// tables across a worker pool with one shared index.
//
//   $ ./build/examples/bulk_snapshot

#include <chrono>
#include <cstdio>

#include "src/benchgen/benchmarks.h"
#include "src/gent/bulk.h"
#include "src/lake/snapshot.h"
#include "src/metrics/similarity.h"

using namespace gent;

namespace {

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

int main() {
  // A TP-TR-style playground: 32 lake tables, 6 keyed sources.
  TpTrConfig config = TpTrSmallConfig();
  config.queries.num_sources = 6;
  auto bench = MakeTpTrBenchmark("demo", config);
  if (!bench.ok()) {
    std::fprintf(stderr, "benchmark generation failed\n");
    return 1;
  }

  // Persist and reload the lake through a snapshot.
  const std::string snap = "/tmp/gent_bulk_demo.snap";
  if (Status s = SaveSnapshot(*bench->lake, snap); !s.ok()) {
    std::fprintf(stderr, "save: %s\n", s.ToString().c_str());
    return 1;
  }
  DataLake lake;
  auto t0 = std::chrono::steady_clock::now();
  if (Status s = LoadSnapshot(lake, snap); !s.ok()) {
    std::fprintf(stderr, "load: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("snapshot reload: %zu tables in %.3fs\n", lake.size(),
              SecondsSince(t0));

  // Reclaim all sources: sequential vs parallel over the same lake.
  std::vector<Table> sources;
  for (const SourceSpec& spec : bench->sources) {
    sources.push_back(spec.source.Clone());
  }
  for (size_t threads : {size_t{1}, size_t{4}}) {
    BulkOptions options;
    options.threads = threads;
    options.timeout_seconds = 30;
    t0 = std::chrono::steady_clock::now();
    std::vector<BulkOutcome> outcomes =
        BulkReclaim(lake, sources, {}, options);
    const double elapsed = SecondsSince(t0);
    size_t ok = 0;
    double eis_sum = 0;
    for (size_t i = 0; i < outcomes.size(); ++i) {
      if (!outcomes[i].result.ok()) continue;
      ++ok;
      eis_sum +=
          EisScore(sources[i], outcomes[i].result->reclaimed).value_or(0);
    }
    std::printf("%zu thread(s): %zu/%zu reclaimed, avg EIS %.3f, %.2fs\n",
                threads, ok, outcomes.size(),
                ok ? eis_sum / static_cast<double>(ok) : 0.0, elapsed);
  }
  std::remove(snap.c_str());
  return 0;
}
