// Resident reclamation service: the server-shaped workflow.
//
// Batch tools (BulkReclaim) rebuild the column-stats catalog per run. A
// service that answers reclamation requests continuously keeps the
// expensive state resident instead: several lakes registered as catalog
// shards, a bounded per-source discovery cache, and one worker pool.
// This example registers two shards, routes requests to a named lake,
// fans a request out across all shards (with and without the stats
// prefilter), shows the discovery cache absorbing repeated sources,
// submits work through the async admission queue, and removes a shard
// while the service keeps serving.
//
//   $ ./build/reclaim_service

#include <chrono>
#include <cstdio>

#include "src/benchgen/benchmarks.h"
#include "src/engine/reclaim_service.h"
#include "src/metrics/similarity.h"

using namespace gent;

namespace {

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

int main() {
  // Two TP-TR-style lakes sharing one dictionary (the precondition for
  // cross-shard fan-out: value ids must be comparable across shards).
  TpTrConfig config = TpTrSmallConfig();
  config.queries.num_sources = 4;
  auto tp = MakeTpTrBenchmark("tp", config);
  if (!tp.ok()) {
    std::fprintf(stderr, "benchmark generation failed\n");
    return 1;
  }

  ServiceOptions options;
  options.dict = tp->lake->dict();
  options.cache_capacity = 64;
  ReclaimService service(options);
  // Shard "tp" borrows the benchmark lake; shard "web" owns a second
  // lake built on the same dictionary (a snapshot or CSV directory via
  // AddLakeFromSnapshot/AddLakeFromDirectory works the same way).
  if (Status s = service.AddLakeView("tp", *tp->lake); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  DataLake web(service.dict());
  auto web_bench = MakeWebBenchmark("web", WebBenchConfig{.t2d_tables = 40});
  if (web_bench.ok()) {
    for (const Table& t : web_bench->lake->tables()) {
      (void)web.AddTable(TranslateToDictionary(t, service.dict()));
    }
  }
  if (Status s = service.AddLakeView("web", web); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("resident service: %zu shards, %zu pool threads\n",
              service.num_lakes(), service.num_threads());

  // Route each source to the shard that holds its originating tables;
  // then fan one source out across every shard (the merged candidate
  // set is scored as one pool).
  ReclaimRequest to_tp;
  to_tp.lake = "tp";
  to_tp.max_rows = 2'000'000;
  ReclaimRequest fan_out;  // empty lake = all shards
  fan_out.max_rows = 2'000'000;

  double cold_s = 0.0, warm_s = 0.0;
  for (int pass = 0; pass < 2; ++pass) {
    auto t0 = std::chrono::steady_clock::now();
    size_t ok = 0;
    double eis_sum = 0.0;
    for (const SourceSpec& spec : tp->sources) {
      auto result = service.Reclaim(spec.source, to_tp);
      if (!result.ok()) continue;
      ++ok;
      eis_sum += EisScore(spec.source, result->reclaimed).value_or(0);
    }
    (pass == 0 ? cold_s : warm_s) = SecondsSince(t0);
    std::printf("%s pass: %zu/%zu reclaimed, avg EIS %.3f, %.3fs\n",
                pass == 0 ? "cold" : "warm", ok, tp->sources.size(),
                ok ? eis_sum / static_cast<double>(ok) : 0.0,
                pass == 0 ? cold_s : warm_s);
  }
  auto stats = service.cache_stats();
  std::printf("discovery cache: %llu hits, %llu misses, %zu entries"
              " (warm pass %.1fx faster)\n",
              static_cast<unsigned long long>(stats.hits),
              static_cast<unsigned long long>(stats.misses), stats.entries,
              warm_s > 0 ? cold_s / warm_s : 0.0);

  auto fanned = service.Reclaim(tp->sources[0].source, fan_out);
  std::printf("fan-out across all shards: %s\n",
              fanned.ok() ? "ok" : fanned.status().ToString().c_str());

  // Stats-prefiltered fan-out: shards sharing no value with the source
  // (here, "web" for a TP-TR source) are skipped before discovery runs.
  // Results are bit-identical to the plain fan-out.
  ReclaimRequest prefiltered = fan_out;
  prefiltered.policy = RoutingPolicy::kStatsPrefilter;
  auto pruned = service.Reclaim(tp->sources[0].source, prefiltered);
  auto routing = service.routing_stats();
  std::printf("stats-prefilter route: %s (%llu shards pruned so far)\n",
              pruned.ok() ? "ok" : pruned.status().ToString().c_str(),
              static_cast<unsigned long long>(routing.shards_pruned));

  // Async admission: submit every source, collect tickets, wait. The
  // admission queue is bounded (ServiceOptions::admission_capacity);
  // each ticket's result is bit-identical to a synchronous Reclaim.
  std::vector<ReclaimTicket> tickets;
  for (const SourceSpec& spec : tp->sources) {
    auto ticket = service.SubmitReclaim(spec.source.Clone(), to_tp);
    if (ticket.ok()) tickets.push_back(std::move(*ticket));
  }
  size_t async_ok = 0;
  for (auto& ticket : tickets) {
    if (ticket.Wait().ok()) ++async_ok;
  }
  std::printf("async admission: %zu/%zu tickets resolved ok\n", async_ok,
              tickets.size());

  // Runtime shard lifecycle: retire "web" while the service keeps
  // serving. In-flight requests pinned to the old registry epoch drain
  // on it; new requests no longer see the shard.
  const uint64_t epoch_before = service.registry_epoch();
  if (Status s = service.RemoveLake("web"); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  auto after = service.Reclaim(tp->sources[0].source, to_tp);
  std::printf("removed shard 'web' (epoch %llu -> %llu), %zu shard(s) left, "
              "serving: %s\n",
              static_cast<unsigned long long>(epoch_before),
              static_cast<unsigned long long>(service.registry_epoch()),
              service.num_lakes(),
              after.ok() ? "ok" : after.status().ToString().c_str());

  return stats.hits > 0 && fanned.ok() && pruned.ok() && after.ok() &&
                 async_ok == tickets.size()
             ? 0
             : 1;
}
