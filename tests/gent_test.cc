// End-to-end tests of the Gen-T pipeline on the paper's running example
// (Figure 3): discovery → expand → matrix traversal → integration.

#include <gtest/gtest.h>

#include <algorithm>

#include "paper_fixtures.h"
#include "src/gent/gent.h"
#include "src/metrics/precision_recall.h"
#include "src/metrics/similarity.h"
#include "src/table/table_builder.h"

namespace gent {
namespace {

using testing::PaperSource;
using testing::PaperTableA;
using testing::PaperTableB;
using testing::PaperTableC;
using testing::PaperTableD;

class GenTTest : public ::testing::Test {
 protected:
  void SetUp() override {
    (void)lake_.AddTable(PaperTableA(lake_.dict()));
    (void)lake_.AddTable(PaperTableB(lake_.dict()));
    (void)lake_.AddTable(PaperTableC(lake_.dict()));
    (void)lake_.AddTable(PaperTableD(lake_.dict()));
  }
  DataLake lake_;
};

TEST_F(GenTTest, ReclaimsPaperExample) {
  GenT gent(lake_);
  Table source = PaperSource(lake_.dict());
  auto r = gent.Reclaim(source);
  ASSERT_TRUE(r.ok()) << r.status().ToString();

  // Misleading table C must not be among the originating tables.
  for (const auto& name : r->originating_names) {
    EXPECT_EQ(name.find("C"), std::string::npos) << name;
  }
  // The reclaimed table matches the source schema.
  EXPECT_EQ(r->reclaimed.column_names(), source.column_names());
  // EIS is high: everything except Brown's education is reclaimable.
  double eis = EisScore(source, r->reclaimed).value();
  EXPECT_GT(eis, 0.9) << r->reclaimed.ToString();
  // No erroneous values: Wang stays Female, Smith's gender stays null.
  auto gender = *r->reclaimed.ColumnIndex("Gender");
  auto name_col = *r->reclaimed.ColumnIndex("Name");
  for (size_t row = 0; row < r->reclaimed.num_rows(); ++row) {
    if (r->reclaimed.CellString(row, name_col) == "Wang") {
      EXPECT_NE(r->reclaimed.CellString(row, gender), "Male");
    }
    if (r->reclaimed.CellString(row, name_col) == "Smith") {
      EXPECT_EQ(r->reclaimed.cell(row, gender), kNull);
    }
  }
}

TEST_F(GenTTest, PerfectWhenSourceItselfInLake) {
  Table source = PaperSource(lake_.dict());
  Table copy = source.Clone();
  copy.set_name("the_source_itself");
  (void)lake_.AddTable(std::move(copy));
  GenT gent(lake_);
  auto r = gent.Reclaim(source);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(IsPerfectReclamation(source, r->reclaimed))
      << r->reclaimed.ToString();
  EXPECT_DOUBLE_EQ(EisScore(source, r->reclaimed).value(), 1.0);
}

TEST_F(GenTTest, PredictedEisMatchesRealizedEis) {
  // The matrix simulation should predict the integration's quality well.
  GenT gent(lake_);
  Table source = PaperSource(lake_.dict());
  auto r = gent.Reclaim(source);
  ASSERT_TRUE(r.ok());
  double realized = EisScore(source, r->reclaimed).value();
  EXPECT_NEAR(r->predicted_eis, realized, 0.05);
}

TEST_F(GenTTest, SkipTraversalAblationIntegratesEverything) {
  GenTConfig cfg;
  cfg.skip_traversal = true;
  GenT gent(lake_, cfg);
  Table source = PaperSource(lake_.dict());
  auto r = gent.Reclaim(source);
  ASSERT_TRUE(r.ok());
  // Without traversal, C leaks into the integration and injects Male rows.
  GenT with(lake_);
  auto r2 = with.Reclaim(source);
  ASSERT_TRUE(r2.ok());
  EXPECT_GE(EisScore(source, r2->reclaimed).value(),
            EisScore(source, r->reclaimed).value());
  EXPECT_GE(ComputePrecisionRecall(source, r2->reclaimed).precision,
            ComputePrecisionRecall(source, r->reclaimed).precision);
}

TEST_F(GenTTest, EmptyLakeYieldsEmptyReclamation) {
  DataLake empty;
  GenT gent(empty);
  Table source = PaperSource(empty.dict());
  auto r = gent.Reclaim(source);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->reclaimed.num_rows(), 0u);
  EXPECT_TRUE(r->originating.empty());
}

TEST_F(GenTTest, UnrelatedLakeYieldsNothing) {
  DataLake other;
  (void)other.AddTable(TableBuilder(other.dict(), "noise")
                           .Columns({"p", "q"})
                           .Row({"aa", "bb"})
                           .Build());
  GenT gent(other);
  Table source = PaperSource(other.dict());
  auto r = gent.Reclaim(source);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->reclaimed.num_rows(), 0u);
}

TEST_F(GenTTest, TimingsArePopulated) {
  GenT gent(lake_);
  Table source = PaperSource(lake_.dict());
  auto r = gent.Reclaim(source);
  ASSERT_TRUE(r.ok());
  EXPECT_GE(r->discovery_seconds, 0.0);
  EXPECT_GE(r->traversal_seconds, 0.0);
  EXPECT_GE(r->integration_seconds, 0.0);
}

TEST_F(GenTTest, OriginatingTablesAreReturnedWithData) {
  GenT gent(lake_);
  Table source = PaperSource(lake_.dict());
  auto r = gent.Reclaim(source);
  ASSERT_TRUE(r.ok());
  ASSERT_FALSE(r->originating.empty());
  EXPECT_EQ(r->originating.size(), r->originating_names.size());
  for (const auto& t : r->originating) EXPECT_GT(t.num_rows(), 0u);
}

}  // namespace
}  // namespace gent
