#include <algorithm>

#include <gtest/gtest.h>

#include "paper_fixtures.h"
#include "src/discovery/discovery.h"
#include "src/lake/data_lake.h"
#include "src/lake/inverted_index.h"
#include "src/table/table_builder.h"

namespace gent {
namespace {

using testing::PaperSource;
using testing::PaperTableA;
using testing::PaperTableB;
using testing::PaperTableC;
using testing::PaperTableD;

// --- DataLake -----------------------------------------------------------------

TEST(DataLakeTest, RegistersAndLooksUp) {
  DataLake lake;
  ASSERT_TRUE(
      lake.AddTable(
              TableBuilder(lake.dict(), "t1").Columns({"a"}).Row({"1"}).Build())
          .ok());
  EXPECT_EQ(lake.size(), 1u);
  EXPECT_EQ(lake.IndexOf("t1").value(), 0u);
  EXPECT_FALSE(lake.IndexOf("nope").ok());
}

TEST(DataLakeTest, RejectsDuplicateNamesAndForeignDictionaries) {
  DataLake lake;
  ASSERT_TRUE(
      lake.AddTable(
              TableBuilder(lake.dict(), "t").Columns({"a"}).Row({"1"}).Build())
          .ok());
  EXPECT_EQ(lake.AddTable(TableBuilder(lake.dict(), "t")
                              .Columns({"b"})
                              .Row({"2"})
                              .Build())
                .code(),
            StatusCode::kAlreadyExists);
  auto foreign = MakeDictionary();
  EXPECT_EQ(
      lake.AddTable(
              TableBuilder(foreign, "u").Columns({"a"}).Row({"1"}).Build())
          .code(),
      StatusCode::kInvalidArgument);
}

TEST(DataLakeTest, StatsAggregate) {
  DataLake lake;
  (void)lake.AddTable(TableBuilder(lake.dict(), "a")
                          .Columns({"x", "y"})
                          .Row({"1", "2"})
                          .Row({"3", "4"})
                          .Build());
  (void)lake.AddTable(
      TableBuilder(lake.dict(), "b").Columns({"z"}).Row({"5"}).Build());
  auto s = lake.ComputeStats();
  EXPECT_EQ(s.num_tables, 2u);
  EXPECT_EQ(s.num_columns, 3u);
  EXPECT_DOUBLE_EQ(s.avg_rows, 1.5);
  EXPECT_EQ(s.total_cells, 5u);
}

// --- InvertedIndex ---------------------------------------------------------------

class IndexTest : public ::testing::Test {
 protected:
  void SetUp() override {
    (void)lake_.AddTable(PaperTableA(lake_.dict()));
    (void)lake_.AddTable(PaperTableB(lake_.dict()));
    (void)lake_.AddTable(PaperTableC(lake_.dict()));
    (void)lake_.AddTable(PaperTableD(lake_.dict()));
  }
  DataLake lake_;
};

TEST_F(IndexTest, OverlapCountsFindMatchingColumns) {
  InvertedIndex index(lake_);
  std::vector<ValueId> names{lake_.dict()->Lookup("Smith"),
                             lake_.dict()->Lookup("Brown"),
                             lake_.dict()->Lookup("Wang")};
  std::sort(names.begin(), names.end());
  auto counts = index.OverlapCounts(names);
  // Name columns of A (col 1), B (col 0), C (col 0), D (col 0).
  EXPECT_EQ(counts[(ColumnRef{0, 1})], 3u);
  EXPECT_EQ(counts[(ColumnRef{1, 0})], 3u);
  EXPECT_EQ(counts[(ColumnRef{2, 0})], 3u);
  EXPECT_EQ(counts[(ColumnRef{3, 0})], 2u);  // D lacks Smith
}

TEST_F(IndexTest, TopKRanksByDistinctSharedValues) {
  InvertedIndex index(lake_);
  Table source = PaperSource(lake_.dict());
  auto top = index.TopKTables(source, 2);
  ASSERT_EQ(top.size(), 2u);
  // A shares most values (IDs, names, education) — must rank first.
  EXPECT_EQ(top[0], 0u);
}

TEST_F(IndexTest, TopKHonorsK) {
  InvertedIndex index(lake_);
  Table source = PaperSource(lake_.dict());
  EXPECT_EQ(index.TopKTables(source, 100).size(), 4u);
  EXPECT_EQ(index.TopKTables(source, 1).size(), 1u);
}

TEST_F(IndexTest, DistinctColumnValuesSkipsNulls) {
  Table t = TableBuilder(lake_.dict(), "t")
                .Columns({"a"})
                .Row({"x"})
                .Row({""})
                .Row({"x"})
                .Build();
  EXPECT_EQ(DistinctColumnValues(t, 0).size(), 1u);
}

TEST_F(IndexTest, SetIntersectionSize) {
  std::unordered_set<ValueId> a{1, 2, 3}, b{2, 3, 4, 5};
  EXPECT_EQ(SetIntersectionSize(a, b), 2u);
  EXPECT_EQ(SetIntersectionSize(b, a), 2u);
  EXPECT_EQ(SetIntersectionSize(a, {}), 0u);
}

// --- Diversification (Algorithm 4) ---------------------------------------------

TEST(DiversifyTest, PenalizesOverlapWithPreviousCandidate) {
  std::vector<ValueId> v1{1, 2, 3, 4};
  std::vector<ValueId> v2{1, 2, 3, 4};  // duplicate of v1
  std::vector<ValueId> v3{7, 8, 9, 10}; // disjoint
  std::vector<DiversifyInput> ranked{
      {0, 1.0, v1},
      {1, 1.0, v2},   // same overlap, but duplicates v1 → penalized
      {2, 0.8, v3},
  };
  auto scored = DiversifyCandidateColumns(ranked);
  ASSERT_EQ(scored.size(), 3u);
  // The duplicate drops to 1.0 − 4/4 = 0; the diverse v3 rises to ~0.8
  // − 0 (v3 vs v2 share nothing) and overtakes it.
  EXPECT_EQ(scored[0].first, 0u);
  EXPECT_EQ(scored[1].first, 2u);
  EXPECT_EQ(scored[2].first, 1u);
  EXPECT_DOUBLE_EQ(scored[2].second, 0.0);
}

TEST(DiversifyTest, SingleCandidateKeepsScore) {
  std::vector<ValueId> v{1};
  auto scored = DiversifyCandidateColumns({{5, 0.7, v}});
  ASSERT_EQ(scored.size(), 1u);
  EXPECT_EQ(scored[0].first, 5u);
  EXPECT_DOUBLE_EQ(scored[0].second, 0.7);
}

// --- Discovery (Algorithm 3) ------------------------------------------------------

class DiscoveryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    (void)lake_.AddTable(PaperTableA(lake_.dict()));
    (void)lake_.AddTable(PaperTableB(lake_.dict()));
    (void)lake_.AddTable(PaperTableC(lake_.dict()));
    (void)lake_.AddTable(PaperTableD(lake_.dict()));
    index_ = std::make_unique<InvertedIndex>(lake_);
  }

  DataLake lake_;
  std::unique_ptr<InvertedIndex> index_;
};

TEST_F(DiscoveryTest, FindsAllRelatedTables) {
  Discovery discovery(*index_, DiscoveryConfig{});
  Table source = PaperSource(lake_.dict());
  auto cands = discovery.FindCandidates(source);
  ASSERT_TRUE(cands.ok());
  // All four tables share values; all should surface.
  EXPECT_EQ(cands->size(), 4u);
}

TEST_F(DiscoveryTest, RequiresSourceKey) {
  Discovery discovery(*index_, DiscoveryConfig{});
  Table keyless = TableBuilder(lake_.dict(), "s").Columns({"x"}).Row({"1"}).Build();
  EXPECT_FALSE(discovery.FindCandidates(keyless).ok());
}

TEST_F(DiscoveryTest, MapsAndRenamesColumns) {
  Discovery discovery(*index_, DiscoveryConfig{});
  Table source = PaperSource(lake_.dict());
  auto cands = discovery.FindCandidates(source);
  ASSERT_TRUE(cands.ok());
  for (const auto& c : *cands) {
    // Every mapped column now carries the source column's name.
    for (const auto& [src_name, col] : c.mapping) {
      EXPECT_EQ(c.table.column_name(col), src_name);
    }
  }
}

TEST_F(DiscoveryTest, KeyCoverageDetected) {
  Discovery discovery(*index_, DiscoveryConfig{});
  Table source = PaperSource(lake_.dict());
  auto cands = discovery.FindCandidates(source);
  ASSERT_TRUE(cands.ok());
  for (const auto& c : *cands) {
    bool is_a = c.lake_index == 0;  // only A has the ID column
    EXPECT_EQ(c.covers_key, is_a) << "lake table " << c.lake_index;
  }
}

TEST_F(DiscoveryTest, DuplicateTableIsPrunedAsSubsumed) {
  // Example 9: an exact duplicate of D adds nothing.
  Table dup = PaperTableD(lake_.dict());
  dup.set_name("E");
  (void)lake_.AddTable(std::move(dup));
  InvertedIndex index(lake_);
  Discovery discovery(index, DiscoveryConfig{});
  Table source = PaperSource(lake_.dict());
  auto cands = discovery.FindCandidates(source);
  ASSERT_TRUE(cands.ok());
  size_t d_like = 0;
  for (const auto& c : *cands) d_like += c.lake_index >= 3;
  EXPECT_EQ(d_like, 1u) << "only one of D/E may survive";
}

TEST_F(DiscoveryTest, ThresholdFiltersWeakCandidates) {
  // An unrelated table sharing one value out of many.
  (void)lake_.AddTable(TableBuilder(lake_.dict(), "noise")
                           .Columns({"p", "q"})
                           .Row({"Smith", "unrelated1"})
                           .Row({"zz1", "unrelated2"})
                           .Row({"zz2", "unrelated3"})
                           .Build());
  InvertedIndex index(lake_);
  DiscoveryConfig cfg;
  cfg.tau = 0.5;  // demand half the source column's values
  Discovery discovery(index, cfg);
  Table source = PaperSource(lake_.dict());
  auto cands = discovery.FindCandidates(source);
  ASSERT_TRUE(cands.ok());
  for (const auto& c : *cands) {
    EXPECT_NE(lake_.table(c.lake_index).name(), "noise");
  }
}

TEST_F(DiscoveryTest, ScoresAreDescending) {
  Discovery discovery(*index_, DiscoveryConfig{});
  Table source = PaperSource(lake_.dict());
  auto cands = discovery.FindCandidates(source);
  ASSERT_TRUE(cands.ok());
  for (size_t i = 1; i < cands->size(); ++i) {
    EXPECT_GE((*cands)[i - 1].score, (*cands)[i].score);
  }
}

}  // namespace
}  // namespace gent
