// Tests for keyless instance comparison (src/metrics/incomplete_similarity).

#include "src/metrics/incomplete_similarity.h"

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "src/metrics/similarity.h"
#include "src/table/table_builder.h"
#include "src/util/random.h"

namespace gent {
namespace {

TEST(PairWeightTest, PlainCountsEqualNonNulls) {
  auto dict = MakeDictionary();
  const ValueId a = dict->Intern("a"), b = dict->Intern("b"),
                c = dict->Intern("c");
  // 2 of 4 equal; one t-null; one disagreement.
  std::vector<ValueId> s = {a, b, c, a};
  std::vector<ValueId> t = {a, b, kNull, b};
  EXPECT_DOUBLE_EQ(PairWeight(s, t, TupleWeight::kPlain), 0.5);
}

TEST(PairWeightTest, ErrorAwarePenalizesDisagreement) {
  auto dict = MakeDictionary();
  const ValueId a = dict->Intern("a"), b = dict->Intern("b"),
                c = dict->Intern("c");
  std::vector<ValueId> s = {a, b, c, a};
  std::vector<ValueId> tn = {a, b, kNull, kNull};  // α=2, δ=0
  std::vector<ValueId> te = {a, b, kNull, b};      // α=2, δ=1
  const double wn = PairWeight(s, tn, TupleWeight::kErrorAware);
  const double we = PairWeight(s, te, TupleWeight::kErrorAware);
  EXPECT_DOUBLE_EQ(wn, 0.5 * (1.0 + 2.0 / 4.0));
  EXPECT_DOUBLE_EQ(we, 0.5 * (1.0 + 1.0 / 4.0));
  EXPECT_GT(wn, we) << "nullified must beat erroneous (EIS principle)";
}

TEST(PairWeightTest, ErroneousValueOnSourceNullPenalized) {
  auto dict = MakeDictionary();
  const ValueId a = dict->Intern("a"), x = dict->Intern("x");
  std::vector<ValueId> s = {a, kNull};
  std::vector<ValueId> t = {a, x};  // fabricates a value the source lacks
  EXPECT_DOUBLE_EQ(PairWeight(s, t, TupleWeight::kErrorAware),
                   0.5 * (1.0 + (1.0 - 1.0) / 2.0));
}

TEST(HungarianTest, PicksGlobalOptimumOverGreedyChoice) {
  // Greedy takes (0,0)=0.9 then (1,1)=0.1 → 1.0.
  // Optimum is (0,1)=0.8 + (1,0)=0.8 → 1.6.
  std::vector<std::vector<double>> w = {{0.9, 0.8}, {0.8, 0.1}};
  std::vector<size_t> match = HungarianMatch(w);
  ASSERT_EQ(match.size(), 2u);
  EXPECT_EQ(match[0], 1u);
  EXPECT_EQ(match[1], 0u);
}

TEST(HungarianTest, RectangularMatrices) {
  // More sources than targets: one source stays unmatched.
  std::vector<std::vector<double>> w = {{0.5}, {0.9}, {0.2}};
  std::vector<size_t> match = HungarianMatch(w);
  ASSERT_EQ(match.size(), 3u);
  EXPECT_EQ(match[1], 0u);
  EXPECT_EQ(match[0], SIZE_MAX);
  EXPECT_EQ(match[2], SIZE_MAX);
}

TEST(HungarianTest, ZeroWeightsUnmatched) {
  std::vector<std::vector<double>> w = {{0.0, 0.0}, {0.0, 0.7}};
  std::vector<size_t> match = HungarianMatch(w);
  EXPECT_EQ(match[0], SIZE_MAX);
  EXPECT_EQ(match[1], 1u);
}

TEST(HungarianTest, EmptyInputs) {
  EXPECT_TRUE(HungarianMatch({}).empty());
  std::vector<std::vector<double>> no_cols = {{}, {}};
  std::vector<size_t> match = HungarianMatch(no_cols);
  EXPECT_EQ(match, std::vector<size_t>(2, SIZE_MAX));
}

Table PaperSource(const DictionaryPtr& dict) {
  return TableBuilder(dict, "source")
      .Columns({"Name", "Age", "Gender", "Education"})
      .Row({"Smith", "27", "", "Bachelors"})
      .Row({"Brown", "24", "Male", "Masters"})
      .Row({"Wang", "32", "Female", "High School"})
      .Build();
}

TEST(IncompleteSimilarityTest, IdenticalTablesScoreOne) {
  auto dict = MakeDictionary();
  Table s = PaperSource(dict);
  auto result = IncompleteInstanceSimilarity(s, s);
  ASSERT_TRUE(result.ok());
  // Self-match: α = non-null count per tuple, δ = 0; tuples with nulls
  // score (1 + α/n)/2 < 1, so the instance score is < 1 but maximal.
  EXPECT_EQ(result->matches.size(), 3u);
  for (const TupleMatch& m : result->matches) {
    EXPECT_EQ(m.source_row, m.target_row);
  }
  // Under plain weight the self-similarity of a null-free table is 1.
  Table nf = TableBuilder(dict, "nf")
                 .Columns({"a", "b"})
                 .Row({"1", "2"})
                 .Row({"3", "4"})
                 .Build();
  IncompleteSimilarityOptions plain;
  plain.weight = TupleWeight::kPlain;
  auto nf_result = IncompleteInstanceSimilarity(nf, nf, plain);
  ASSERT_TRUE(nf_result.ok());
  EXPECT_DOUBLE_EQ(nf_result->similarity, 1.0);
}

TEST(IncompleteSimilarityTest, DisjointTablesScoreZeroPlain) {
  auto dict = MakeDictionary();
  Table s = TableBuilder(dict, "s").Columns({"a"}).Row({"1"}).Row({"2"}).Build();
  Table t = TableBuilder(dict, "t").Columns({"a"}).Row({"3"}).Row({"4"}).Build();
  IncompleteSimilarityOptions plain;
  plain.weight = TupleWeight::kPlain;
  auto result = IncompleteInstanceSimilarity(s, t, plain);
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result->similarity, 0.0);
  EXPECT_TRUE(result->matches.empty());
}

TEST(IncompleteSimilarityTest, RowPermutationIsIrrelevant) {
  auto dict = MakeDictionary();
  Table s = PaperSource(dict);
  Table t = TableBuilder(dict, "t")
                .Columns({"Name", "Age", "Gender", "Education"})
                .Row({"Wang", "32", "Female", "High School"})
                .Row({"Smith", "27", "", "Bachelors"})
                .Row({"Brown", "24", "Male", "Masters"})
                .Build();
  auto self = IncompleteInstanceSimilarity(s, s);
  auto perm = IncompleteInstanceSimilarity(s, t);
  ASSERT_TRUE(self.ok());
  ASSERT_TRUE(perm.ok());
  EXPECT_DOUBLE_EQ(self->similarity, perm->similarity);
}

TEST(IncompleteSimilarityTest, ColumnPermutationIsIrrelevant) {
  auto dict = MakeDictionary();
  Table s = PaperSource(dict);
  Table t = TableBuilder(dict, "t")
                .Columns({"Education", "Name", "Gender", "Age"})
                .Row({"Bachelors", "Smith", "", "27"})
                .Row({"Masters", "Brown", "Male", "24"})
                .Row({"High School", "Wang", "Female", "32"})
                .Build();
  auto self = IncompleteInstanceSimilarity(s, s);
  auto perm = IncompleteInstanceSimilarity(s, t);
  ASSERT_TRUE(self.ok());
  ASSERT_TRUE(perm.ok());
  EXPECT_DOUBLE_EQ(self->similarity, perm->similarity);
}

TEST(IncompleteSimilarityTest, MissingColumnRejected) {
  auto dict = MakeDictionary();
  Table s = PaperSource(dict);
  Table t = TableBuilder(dict, "t").Columns({"Name"}).Row({"Smith"}).Build();
  auto result = IncompleteInstanceSimilarity(s, t);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(IncompleteSimilarityTest, PrefersNullifiedOverErroneousMatch) {
  // The EIS principle (paper Example 6) without keys: a target tuple with
  // nulls outranks one that fabricates values over source nulls.
  auto dict = MakeDictionary();
  Table s = TableBuilder(dict, "s")
                .Columns({"Name", "Age", "Gender"})
                .Row({"Smith", "27", ""})
                .Build();
  Table t = TableBuilder(dict, "t")
                .Columns({"Name", "Age", "Gender"})
                .Row({"Smith", "27", "Male"})  // erroneous on source null
                .Row({"Smith", "27", ""})      // exact w.r.t. nulls
                .Build();
  auto result = IncompleteInstanceSimilarity(s, t);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->matches.size(), 1u);
  EXPECT_EQ(result->matches[0].target_row, 1u);
}

TEST(IncompleteSimilarityTest, GreedyAndExactAgreeOnEasyInstances) {
  // When every source tuple has a unique best target (no competition),
  // greedy attains the optimum.
  auto dict = MakeDictionary();
  Table s = PaperSource(dict);
  IncompleteSimilarityOptions exact;
  exact.algorithm = MatchAlgorithm::kExact;
  IncompleteSimilarityOptions greedy;
  greedy.algorithm = MatchAlgorithm::kGreedy;
  auto e = IncompleteInstanceSimilarity(s, s, exact);
  auto g = IncompleteInstanceSimilarity(s, s, greedy);
  ASSERT_TRUE(e.ok());
  ASSERT_TRUE(g.ok());
  EXPECT_TRUE(e->exact);
  EXPECT_FALSE(g->exact);
  EXPECT_DOUBLE_EQ(e->similarity, g->similarity);
}

TEST(IncompleteSimilarityTest, AutoSwitchesOnCutoff) {
  auto dict = MakeDictionary();
  TableBuilder builder(dict, "big");
  builder.Columns({"a"});
  for (int i = 0; i < 100; ++i) builder.Row({std::to_string(i)});
  Table big = builder.Build();
  IncompleteSimilarityOptions options;  // kAuto, cutoff 64
  auto result = IncompleteInstanceSimilarity(big, big, options);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->exact);
  options.exact_cutoff = 128;
  result = IncompleteInstanceSimilarity(big, big, options);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->exact);
}

TEST(IncompleteSimilarityTest, MinPairWeightPrunes) {
  auto dict = MakeDictionary();
  Table s = TableBuilder(dict, "s")
                .Columns({"a", "b"})
                .Row({"1", "2"})
                .Build();
  Table t = TableBuilder(dict, "t")
                .Columns({"a", "b"})
                .Row({"1", "9"})  // half-match
                .Build();
  IncompleteSimilarityOptions options;
  options.weight = TupleWeight::kPlain;
  options.min_pair_weight = 0.75;
  auto result = IncompleteInstanceSimilarity(s, t, options);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->matches.empty());
}

TEST(IncompleteSimilarityTest, EmptySourceOrTarget) {
  auto dict = MakeDictionary();
  Table empty = TableBuilder(dict, "e").Columns({"a"}).Build();
  Table t = TableBuilder(dict, "t").Columns({"a"}).Row({"1"}).Build();
  auto result = IncompleteInstanceSimilarity(empty, t);
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result->similarity, 0.0);
  result = IncompleteInstanceSimilarity(t, empty);
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result->similarity, 0.0);
}

// Property sweep: exact ≥ greedy on random instances (the exact matcher
// is optimal), and both are within [0,1]; on permuted-self instances the
// matching must recover similarity equal to self-comparison.
class IncompleteSweep : public ::testing::TestWithParam<int> {};

TEST_P(IncompleteSweep, ExactDominatesGreedy) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 2654435761u + 17);
  auto dict = MakeDictionary();
  const size_t cols = 2 + rng.Index(3);
  std::vector<std::string> names;
  for (size_t c = 0; c < cols; ++c) names.push_back("c" + std::to_string(c));
  auto random_table = [&](const std::string& name) {
    TableBuilder builder(dict, name);
    builder.Columns(names);
    const size_t rows = 3 + rng.Index(10);
    for (size_t r = 0; r < rows; ++r) {
      std::vector<std::string> row;
      for (size_t c = 0; c < cols; ++c) {
        row.push_back(rng.Bernoulli(0.15)
                          ? ""
                          : "v" + std::to_string(rng.Index(5)));
      }
      builder.Row(row);
    }
    return builder.Build();
  };
  Table s = random_table("s");
  Table t = random_table("t");
  IncompleteSimilarityOptions exact;
  exact.algorithm = MatchAlgorithm::kExact;
  IncompleteSimilarityOptions greedy;
  greedy.algorithm = MatchAlgorithm::kGreedy;
  auto e = IncompleteInstanceSimilarity(s, t, exact);
  auto g = IncompleteInstanceSimilarity(s, t, greedy);
  ASSERT_TRUE(e.ok());
  ASSERT_TRUE(g.ok());
  EXPECT_GE(e->similarity + 1e-9, g->similarity);
  EXPECT_GE(g->similarity, 0.0);
  EXPECT_LE(e->similarity, 1.0 + 1e-9);
  // 1/2-approximation guarantee of greedy maximum-weight matching.
  EXPECT_GE(g->similarity + 1e-9, 0.5 * e->similarity);
}

INSTANTIATE_TEST_SUITE_P(Seeds, IncompleteSweep, ::testing::Range(1, 21));

}  // namespace
}  // namespace gent
