#include <gtest/gtest.h>

#include "paper_fixtures.h"
#include "src/gent/report.h"
#include "src/table/table_builder.h"

namespace gent {
namespace {

using testing::PaperReclaimedS1;
using testing::PaperReclaimedS2;
using testing::PaperSource;

class ReportTest : public ::testing::Test {
 protected:
  DictionaryPtr dict_ = MakeDictionary();
};

TEST_F(ReportTest, PerfectReclamationHasNoFindings) {
  Table s = PaperSource(dict_);
  auto r = DiagnoseReclamation(s, s.Clone());
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->perfect());
  EXPECT_TRUE(r->findings.empty());
  EXPECT_EQ(r->matched_cells, 12u);  // 3 rows × 4 non-key columns
  EXPECT_EQ(r->underivable_rows, 0u);
}

TEST_F(ReportTest, ClassifiesErroneousCells) {
  // Ŝ1 (Fig. 4): Smith's gender wrongly "Male" (source null).
  Table s = PaperSource(dict_);
  auto r = DiagnoseReclamation(s, PaperReclaimedS1(dict_));
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->perfect());
  bool found_gender = false;
  for (const auto& f : r->findings) {
    if (f.verdict == CellVerdict::kContradicting &&
        s.column_name(f.source_col) == "Gender" && f.source_row == 0) {
      found_gender = true;
      EXPECT_EQ(f.reclaimed_value, "Male");
    }
  }
  EXPECT_TRUE(found_gender);
}

TEST_F(ReportTest, ClassifiesMissingCells) {
  // Ŝ2 (Fig. 4): Smith's age and Wang's education are nullified.
  Table s = PaperSource(dict_);
  auto r = DiagnoseReclamation(s, PaperReclaimedS2(dict_));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->contradicting_cells, 0u);
  EXPECT_EQ(r->missing_cells, 2u);
}

TEST_F(ReportTest, ClassifiesUnderivableRows) {
  Table s = PaperSource(dict_);
  Table partial = s.Clone();
  partial.RemoveRows({2});  // Wang gone entirely
  auto r = DiagnoseReclamation(s, partial);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->underivable_rows, 1u);
  bool found = false;
  for (const auto& f : r->findings) {
    found |= f.verdict == CellVerdict::kUnderivable && f.source_row == 2;
  }
  EXPECT_TRUE(found);
}

TEST_F(ReportTest, MissingKeyColumnMeansAllUnderivable) {
  Table s = PaperSource(dict_);
  Table no_key = TableBuilder(dict_, "r")
                     .Columns({"Name", "Age"})
                     .Row({"Smith", "27"})
                     .Build();
  auto r = DiagnoseReclamation(s, no_key);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->underivable_rows, 3u);
}

TEST_F(ReportTest, UsesBestAlignedTuple) {
  // Two aligned tuples for one key: the better one drives the verdicts.
  Table s = PaperSource(dict_);
  Table r = TableBuilder(dict_, "r")
                .Columns({"ID", "Name", "Age", "Gender", "Education Level"})
                .Row({"1", "Wrong", "0", "x", "y"})
                .Row({"1", "Brown", "24", "Male", "Masters"})
                .Build();
  auto rep = DiagnoseReclamation(s, r);
  ASSERT_TRUE(rep.ok());
  // Row 1 is perfectly covered by the second tuple; rows 0/2 underivable.
  EXPECT_EQ(rep->contradicting_cells, 0u);
  EXPECT_EQ(rep->underivable_rows, 2u);
}

TEST_F(ReportTest, SummaryMentionsColumnsAndValues) {
  Table s = PaperSource(dict_);
  auto r = DiagnoseReclamation(s, PaperReclaimedS1(dict_));
  ASSERT_TRUE(r.ok());
  std::string summary = r->Summarize(s);
  EXPECT_NE(summary.find("Gender"), std::string::npos);
  EXPECT_NE(summary.find("Male"), std::string::npos);
}

TEST_F(ReportTest, RequiresSourceKey) {
  Table keyless = TableBuilder(dict_, "s").Columns({"a"}).Row({"1"}).Build();
  EXPECT_FALSE(DiagnoseReclamation(keyless, keyless.Clone()).ok());
}

TEST_F(ReportTest, VerdictNamesAreStable) {
  EXPECT_EQ(CellVerdictName(CellVerdict::kMatched), "matched");
  EXPECT_EQ(CellVerdictName(CellVerdict::kMissing), "missing");
  EXPECT_EQ(CellVerdictName(CellVerdict::kContradicting), "contradicting");
  EXPECT_EQ(CellVerdictName(CellVerdict::kUnderivable), "underivable");
}

}  // namespace
}  // namespace gent
