#include <gtest/gtest.h>

#include "src/lake/inverted_index.h"
#include "src/ops/full_disjunction.h"
#include "src/ops/fusion.h"
#include "src/ops/join.h"
#include "src/ops/unary.h"
#include "src/ops/union.h"
#include "src/table/table_builder.h"

namespace gent {
namespace {

class OpsTest : public ::testing::Test {
 protected:
  DictionaryPtr dict_ = MakeDictionary();

  ValueId V(const std::string& s) { return dict_->Intern(s); }

  Table People() {
    return TableBuilder(dict_, "people")
        .Columns({"id", "name", "city"})
        .Row({"1", "ann", "boston"})
        .Row({"2", "bob", ""})
        .Row({"3", "cat", "denver"})
        .Key({"id"})
        .Build();
  }
};

// --- Projection --------------------------------------------------------------

TEST_F(OpsTest, ProjectReordersColumns) {
  auto p = Project(People(), {"city", "id"});
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->num_cols(), 2u);
  EXPECT_EQ(p->column_name(0), "city");
  EXPECT_EQ(p->CellString(0, 1), "1");
}

TEST_F(OpsTest, ProjectMissingColumnFails) {
  EXPECT_EQ(Project(People(), {"ghost"}).status().code(),
            StatusCode::kNotFound);
}

TEST_F(OpsTest, ProjectKeepsKeyWhenKeySurvives) {
  auto p = Project(People(), {"name", "id"});
  ASSERT_TRUE(p.ok());
  EXPECT_TRUE(p->has_key());
  EXPECT_TRUE(p->IsKeyColumn(1));
}

TEST_F(OpsTest, ProjectDropsKeyWhenKeyColumnDropped) {
  auto p = Project(People(), {"name", "city"});
  ASSERT_TRUE(p.ok());
  EXPECT_FALSE(p->has_key());
}

// --- Selection ----------------------------------------------------------------

TEST_F(OpsTest, SelectFiltersRows) {
  Table t = People();
  Table sel = Select(t, [&](const Table& tt, size_t r) {
    return tt.cell(r, 2) != kNull;
  });
  EXPECT_EQ(sel.num_rows(), 2u);
}

TEST_F(OpsTest, SelectValueIn) {
  Table t = People();
  Table sel = SelectValueIn(t, 0, {V("1"), V("3")});
  ASSERT_EQ(sel.num_rows(), 2u);
  EXPECT_EQ(sel.CellString(0, 1), "ann");
  EXPECT_EQ(sel.CellString(1, 1), "cat");
}

TEST_F(OpsTest, DistinctRemovesExactDuplicates) {
  Table t = TableBuilder(dict_, "d")
                .Columns({"a", "b"})
                .Row({"1", "x"})
                .Row({"1", "x"})
                .Row({"1", ""})
                .Build();
  EXPECT_EQ(Distinct(t).num_rows(), 2u);
}

// --- Subsumption ---------------------------------------------------------------

TEST_F(OpsTest, SubsumesSemantics) {
  std::vector<ValueId> full{V("a"), V("b"), V("c")};
  std::vector<ValueId> partial{V("a"), kNull, V("c")};
  std::vector<ValueId> conflicting{V("a"), V("x"), kNull};
  EXPECT_TRUE(Subsumes(full, partial));
  EXPECT_FALSE(Subsumes(partial, full));
  EXPECT_FALSE(Subsumes(full, full));  // equal tuples don't subsume
  EXPECT_FALSE(Subsumes(full, conflicting));
}

TEST_F(OpsTest, SubsumptionRemovesDominatedTuples) {
  Table t = TableBuilder(dict_, "s")
                .Columns({"a", "b", "c"})
                .Row({"1", "x", "y"})
                .Row({"1", "", "y"})
                .Row({"1", "", ""})
                .Row({"2", "", ""})
                .Build();
  auto b = Subsumption(t);
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(b->num_rows(), 2u);  // (1,x,y) and (2,⊥,⊥) survive
}

TEST_F(OpsTest, SubsumptionKeepsIncomparableTuples) {
  Table t = TableBuilder(dict_, "s")
                .Columns({"a", "b"})
                .Row({"1", ""})
                .Row({"", "2"})
                .Build();
  auto b = Subsumption(t);
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(b->num_rows(), 2u);
}

// --- Complementation -------------------------------------------------------------

TEST_F(OpsTest, ComplementsSemantics) {
  std::vector<ValueId> t1{V("k"), V("a"), kNull};
  std::vector<ValueId> t2{V("k"), kNull, V("b")};
  std::vector<ValueId> t3{V("j"), kNull, V("b")};  // no shared value
  std::vector<ValueId> t4{V("k"), V("x"), V("b")}; // conflicts with t1
  EXPECT_TRUE(Complements(t1, t2));
  EXPECT_TRUE(Complements(t2, t1));
  EXPECT_FALSE(Complements(t1, t3));
  EXPECT_FALSE(Complements(t1, t4));
  EXPECT_FALSE(Complements(t1, t1));  // nothing new on either side
  auto merged = MergeComplement(t1, t2);
  EXPECT_EQ(merged, (std::vector<ValueId>{V("k"), V("a"), V("b")}));
}

TEST_F(OpsTest, ComplementationMergesChains) {
  // Three tuples that pairwise complement into one complete tuple.
  Table t = TableBuilder(dict_, "c")
                .Columns({"k", "a", "b", "c"})
                .Row({"1", "x", "", ""})
                .Row({"1", "", "y", ""})
                .Row({"1", "", "", "z"})
                .Build();
  auto k = Complementation(t);
  ASSERT_TRUE(k.ok());
  ASSERT_EQ(k->num_rows(), 1u);
  EXPECT_EQ(k->CellString(0, 1), "x");
  EXPECT_EQ(k->CellString(0, 2), "y");
  EXPECT_EQ(k->CellString(0, 3), "z");
}

TEST_F(OpsTest, ComplementationKeepsConflicts) {
  Table t = TableBuilder(dict_, "c")
                .Columns({"k", "a"})
                .Row({"1", "x"})
                .Row({"1", "y"})
                .Build();
  auto k = Complementation(t);
  ASSERT_TRUE(k.ok());
  EXPECT_EQ(k->num_rows(), 2u);  // conflicting non-nulls never merge
}

TEST_F(OpsTest, MinimalFormIsStable) {
  Table t = TableBuilder(dict_, "m")
                .Columns({"k", "a", "b"})
                .Row({"1", "x", ""})
                .Row({"1", "", "y"})
                .Row({"1", "x", "y"})
                .Row({"1", "x", "y"})
                .Build();
  auto m = TakeMinimalForm(t);
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m->num_rows(), 1u);
  // Reapplying is a no-op.
  auto m2 = TakeMinimalForm(*m);
  ASSERT_TRUE(m2.ok());
  EXPECT_EQ(m2->num_rows(), 1u);
}

// --- Unions -------------------------------------------------------------------

TEST_F(OpsTest, OuterUnionPadsMissingColumns) {
  Table a = TableBuilder(dict_, "a").Columns({"x", "y"}).Row({"1", "2"}).Build();
  Table b = TableBuilder(dict_, "b").Columns({"y", "z"}).Row({"3", "4"}).Build();
  Table u = OuterUnion(a, b);
  ASSERT_EQ(u.num_cols(), 3u);
  ASSERT_EQ(u.num_rows(), 2u);
  EXPECT_EQ(u.CellString(0, 0), "1");
  EXPECT_EQ(u.cell(0, 2), kNull);   // a lacks z
  EXPECT_EQ(u.cell(1, 0), kNull);   // b lacks x
  EXPECT_EQ(u.CellString(1, 1), "3");
}

TEST_F(OpsTest, OuterUnionOnSameSchemaEqualsInnerUnion) {
  Table a = TableBuilder(dict_, "a").Columns({"x"}).Row({"1"}).Build();
  Table b = TableBuilder(dict_, "b").Columns({"x"}).Row({"2"}).Build();
  Table u = OuterUnion(a, b);
  auto i = InnerUnion(a, b);
  ASSERT_TRUE(i.ok());
  EXPECT_EQ(RowsOf(u), RowsOf(*i));  // Lemma 11
}

TEST_F(OpsTest, InnerUnionRejectsDifferentSchemas) {
  Table a = TableBuilder(dict_, "a").Columns({"x"}).Row({"1"}).Build();
  Table b = TableBuilder(dict_, "b").Columns({"y"}).Row({"2"}).Build();
  EXPECT_FALSE(InnerUnion(a, b).ok());
}

TEST_F(OpsTest, InnerUnionBySchemaGroups) {
  std::vector<Table> tables;
  tables.push_back(
      TableBuilder(dict_, "a1").Columns({"x", "y"}).Row({"1", "2"}).Build());
  tables.push_back(
      TableBuilder(dict_, "a2").Columns({"y", "x"}).Row({"9", "8"}).Build());
  tables.push_back(TableBuilder(dict_, "b").Columns({"z"}).Row({"3"}).Build());
  auto merged = InnerUnionBySchema(tables);
  EXPECT_EQ(merged.size(), 2u);
}

// --- Joins --------------------------------------------------------------------

TEST_F(OpsTest, InnerJoinOnSharedColumn) {
  Table a = TableBuilder(dict_, "a")
                .Columns({"id", "name"})
                .Row({"1", "ann"})
                .Row({"2", "bob"})
                .Build();
  Table b = TableBuilder(dict_, "b")
                .Columns({"id", "age"})
                .Row({"1", "30"})
                .Row({"3", "40"})
                .Build();
  auto j = NaturalJoin(a, b, JoinKind::kInner);
  ASSERT_TRUE(j.ok());
  ASSERT_EQ(j->num_rows(), 1u);
  EXPECT_EQ(j->CellString(0, 1), "ann");
  EXPECT_EQ(j->CellString(0, 2), "30");
}

TEST_F(OpsTest, JoinIsNullRejecting) {
  Table a = TableBuilder(dict_, "a").Columns({"id", "v"}).Row({"", "x"}).Build();
  Table b = TableBuilder(dict_, "b").Columns({"id", "w"}).Row({"", "y"}).Build();
  auto j = NaturalJoin(a, b, JoinKind::kInner);
  ASSERT_TRUE(j.ok());
  EXPECT_EQ(j->num_rows(), 0u);  // null keys never match
}

TEST_F(OpsTest, LeftJoinPreservesLeft) {
  Table a = TableBuilder(dict_, "a")
                .Columns({"id", "name"})
                .Row({"1", "ann"})
                .Row({"2", "bob"})
                .Build();
  Table b = TableBuilder(dict_, "b").Columns({"id", "age"}).Row({"1", "30"}).Build();
  auto j = NaturalJoin(a, b, JoinKind::kLeft);
  ASSERT_TRUE(j.ok());
  ASSERT_EQ(j->num_rows(), 2u);
  EXPECT_EQ(j->CellString(1, 1), "bob");
  EXPECT_EQ(j->cell(1, 2), kNull);
}

TEST_F(OpsTest, FullOuterJoinPreservesBoth) {
  Table a = TableBuilder(dict_, "a").Columns({"id", "n"}).Row({"1", "x"}).Build();
  Table b = TableBuilder(dict_, "b").Columns({"id", "m"}).Row({"2", "y"}).Build();
  auto j = NaturalJoin(a, b, JoinKind::kFullOuter);
  ASSERT_TRUE(j.ok());
  ASSERT_EQ(j->num_rows(), 2u);
  // Right-preserved row carries its join-key value.
  EXPECT_EQ(j->CellString(1, 0), "2");
  EXPECT_EQ(j->cell(1, 1), kNull);
  EXPECT_EQ(j->CellString(1, 2), "y");
}

TEST_F(OpsTest, JoinDuplicateKeysMultiply) {
  Table a = TableBuilder(dict_, "a")
                .Columns({"id", "n"})
                .Row({"1", "x"})
                .Row({"1", "y"})
                .Build();
  Table b = TableBuilder(dict_, "b")
                .Columns({"id", "m"})
                .Row({"1", "p"})
                .Row({"1", "q"})
                .Build();
  auto j = NaturalJoin(a, b, JoinKind::kInner);
  ASSERT_TRUE(j.ok());
  EXPECT_EQ(j->num_rows(), 4u);
}

TEST_F(OpsTest, CrossProductCountsAndLimits) {
  Table a = TableBuilder(dict_, "a").Columns({"x"}).Row({"1"}).Row({"2"}).Build();
  Table b = TableBuilder(dict_, "b").Columns({"y"}).Row({"3"}).Row({"4"}).Build();
  auto cp = CrossProduct(a, b);
  ASSERT_TRUE(cp.ok());
  EXPECT_EQ(cp->num_rows(), 4u);
  auto limited = CrossProduct(a, b, OpLimits().MaxRows(2));
  EXPECT_EQ(limited.status().code(), StatusCode::kOutOfRange);
}

TEST_F(OpsTest, JoinCardinalityEstimate) {
  Table a = TableBuilder(dict_, "a")
                .Columns({"id", "n"})
                .Row({"1", "x"})
                .Row({"2", "y"})
                .Build();
  Table b = TableBuilder(dict_, "b")
                .Columns({"id", "m"})
                .Row({"1", "p"})
                .Row({"2", "q"})
                .Build();
  // |a|*|b| / max(2,2) = 2.
  EXPECT_DOUBLE_EQ(EstimateJoinCardinality(a, b), 2.0);
  Table empty = TableBuilder(dict_, "e").Columns({"id"}).Build();
  EXPECT_DOUBLE_EQ(EstimateJoinCardinality(a, empty), 0.0);
}

// --- Full disjunction ------------------------------------------------------------

TEST_F(OpsTest, FullDisjunctionCombinesAcrossTables) {
  // Paper Fig. 5 tables A, B, C over the applicant source.
  Table a = TableBuilder(dict_, "A")
                .Columns({"ID", "Name", "Education Level"})
                .Row({"0", "Smith", "Bachelors"})
                .Row({"1", "Brown", ""})
                .Row({"2", "Wang", "High School"})
                .Build();
  Table b = TableBuilder(dict_, "B")
                .Columns({"Name", "Age"})
                .Row({"Smith", "27"})
                .Row({"Brown", "24"})
                .Row({"Wang", "32"})
                .Build();
  auto fd = FullDisjunction({a, b});
  ASSERT_TRUE(fd.ok());
  // Every Name appears exactly once, with ID, Age and Education combined.
  EXPECT_EQ(fd->num_rows(), 3u);
  auto name = *fd->ColumnIndex("Name");
  auto age = *fd->ColumnIndex("Age");
  auto id = *fd->ColumnIndex("ID");
  for (size_t r = 0; r < fd->num_rows(); ++r) {
    EXPECT_NE(fd->cell(r, name), kNull);
    EXPECT_NE(fd->cell(r, age), kNull);
    EXPECT_NE(fd->cell(r, id), kNull);
  }
}

TEST_F(OpsTest, FullDisjunctionOfNothingFails) {
  EXPECT_FALSE(FullDisjunction({}).ok());
}

// --- Theorem 8 equivalences (Lemmas 12-14) ------------------------------------

// Helper: σ(T1.C = T2.C ≠ ⊥, β(κ(T1 ⊎ T2))) — the Lemma 12 rewriting of
// inner join for tables in minimal form.
Result<Table> JoinViaOperators(const Table& t1, const Table& t2,
                               const DictionaryPtr& dict) {
  auto shared = SharedColumns(t1, t2);
  Table u = OuterUnion(t1, t2);
  GENT_ASSIGN_OR_RETURN(Table k, Complementation(u));
  GENT_ASSIGN_OR_RETURN(Table b, Subsumption(k));
  // Select tuples whose shared-column values appear in both inputs.
  std::vector<std::unordered_set<ValueId>> in_both;
  std::vector<size_t> shared_cols;
  for (const auto& name : shared) {
    auto v1 = DistinctColumnValues(t1, *t1.ColumnIndex(name));
    auto v2 = DistinctColumnValues(t2, *t2.ColumnIndex(name));
    std::unordered_set<ValueId> inter;
    for (ValueId v : v1) {
      if (v2.count(v)) inter.insert(v);
    }
    in_both.push_back(std::move(inter));
    shared_cols.push_back(*b.ColumnIndex(name));
  }
  (void)dict;
  return Select(b, [&](const Table& t, size_t r) {
    for (size_t i = 0; i < shared_cols.size(); ++i) {
      ValueId v = t.cell(r, shared_cols[i]);
      if (v == kNull || in_both[i].count(v) == 0) return false;
    }
    return true;
  });
}

TEST_F(OpsTest, Lemma12InnerJoinEquivalence) {
  Table t1 = TableBuilder(dict_, "t1")
                 .Columns({"k", "a"})
                 .Row({"1", "x"})
                 .Row({"2", "y"})
                 .Row({"3", "z"})
                 .Build();
  Table t2 = TableBuilder(dict_, "t2")
                 .Columns({"k", "b"})
                 .Row({"1", "p"})
                 .Row({"2", "q"})
                 .Row({"4", "r"})
                 .Build();
  auto direct = NaturalJoin(t1, t2, JoinKind::kInner);
  auto via = JoinViaOperators(t1, t2, dict_);
  ASSERT_TRUE(direct.ok());
  ASSERT_TRUE(via.ok());
  auto direct_proj = Project(*direct, via->column_names());
  ASSERT_TRUE(direct_proj.ok());
  EXPECT_EQ(RowsOf(*direct_proj), RowsOf(*via));
}

TEST_F(OpsTest, Lemma13LeftJoinEquivalence) {
  Table t1 = TableBuilder(dict_, "t1")
                 .Columns({"k", "a"})
                 .Row({"1", "x"})
                 .Row({"5", "w"})
                 .Build();
  Table t2 = TableBuilder(dict_, "t2")
                 .Columns({"k", "b"})
                 .Row({"1", "p"})
                 .Build();
  auto direct = NaturalJoin(t1, t2, JoinKind::kLeft);
  ASSERT_TRUE(direct.ok());
  // β((T1 ⋈ T2) ⊎ T1)
  auto inner = NaturalJoin(t1, t2, JoinKind::kInner);
  ASSERT_TRUE(inner.ok());
  auto via = Subsumption(OuterUnion(*inner, t1));
  ASSERT_TRUE(via.ok());
  auto direct_proj = Project(*direct, via->column_names());
  ASSERT_TRUE(direct_proj.ok());
  EXPECT_EQ(RowsOf(*direct_proj), RowsOf(*via));
}

TEST_F(OpsTest, Lemma14FullOuterJoinEquivalence) {
  Table t1 = TableBuilder(dict_, "t1")
                 .Columns({"k", "a"})
                 .Row({"1", "x"})
                 .Row({"5", "w"})
                 .Build();
  Table t2 = TableBuilder(dict_, "t2")
                 .Columns({"k", "b"})
                 .Row({"1", "p"})
                 .Row({"6", "r"})
                 .Build();
  auto direct = NaturalJoin(t1, t2, JoinKind::kFullOuter);
  ASSERT_TRUE(direct.ok());
  // β(β((T1 ⋈ T2) ⊎ T1) ⊎ T2)
  auto inner = NaturalJoin(t1, t2, JoinKind::kInner);
  ASSERT_TRUE(inner.ok());
  auto step1 = Subsumption(OuterUnion(*inner, t1));
  ASSERT_TRUE(step1.ok());
  auto via = Subsumption(OuterUnion(*step1, t2));
  ASSERT_TRUE(via.ok());
  auto direct_proj = Project(*direct, via->column_names());
  ASSERT_TRUE(direct_proj.ok());
  EXPECT_EQ(RowsOf(*direct_proj), RowsOf(*via));
}

}  // namespace
}  // namespace gent
