// Tests for binary lake snapshots (src/lake/snapshot), including
// corruption injection.

#include "src/lake/snapshot.h"

#include <cerrno>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

#include "src/benchgen/tpch.h"
#include "src/gent/gent.h"
#include "src/ops/unary.h"
#include "src/storage/catalog_pager.h"
#include "src/storage/io.h"
#include "src/table/table_builder.h"

namespace gent {
namespace {

class SnapshotTest : public ::testing::Test {
 protected:
  SnapshotTest() {
    dir_ = std::filesystem::temp_directory_path() /
           ("gent_snap_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::create_directories(dir_);
  }
  ~SnapshotTest() override {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }

  std::string Path(const std::string& name) const {
    return (dir_ / name).string();
  }

  static DataLake MakeLake() {
    DataLake lake;
    const DictionaryPtr& dict = lake.dict();
    (void)lake.AddTable(TableBuilder(dict, "people")
                            .Columns({"id", "name", "city"})
                            .Row({"1", "smith", "boston"})
                            .Row({"2", "brown", ""})
                            .Key({"id"})
                            .Build());
    (void)lake.AddTable(TableBuilder(dict, "empty")
                            .Columns({"a", "b"})
                            .Build());
    (void)lake.AddTable(TableBuilder(dict, "weird")
                            .Columns({"v"})
                            .Row({"comma,and\"quote"})
                            .Row({"3.10"})  // numeric canonicalization
                            .Build());
    return lake;
  }

  std::filesystem::path dir_;
};

TEST_F(SnapshotTest, RoundTripPreservesEverything) {
  DataLake lake = MakeLake();
  ASSERT_TRUE(SaveSnapshot(lake, Path("lake.snap")).ok());

  DataLake loaded;
  ASSERT_TRUE(LoadSnapshot(loaded, Path("lake.snap")).ok());
  ASSERT_EQ(loaded.size(), lake.size());
  for (size_t i = 0; i < lake.size(); ++i) {
    const Table& a = lake.table(i);
    const Table& b = loaded.table(i);
    EXPECT_EQ(a.name(), b.name());
    ASSERT_EQ(a.column_names(), b.column_names());
    EXPECT_EQ(a.key_columns(), b.key_columns());
    ASSERT_EQ(a.num_rows(), b.num_rows());
    for (size_t r = 0; r < a.num_rows(); ++r) {
      for (size_t c = 0; c < a.num_cols(); ++c) {
        EXPECT_EQ(a.CellString(r, c), b.CellString(r, c))
            << a.name() << " (" << r << "," << c << ")";
      }
    }
  }
}

TEST_F(SnapshotTest, LoadIntoNonEmptyLakeRemapsIds) {
  DataLake lake = MakeLake();
  ASSERT_TRUE(SaveSnapshot(lake, Path("lake.snap")).ok());

  // Target lake already has values interned in a different order, so
  // the saved ids cannot be reused verbatim — remap must kick in.
  DataLake target;
  (void)target.AddTable(TableBuilder(target.dict(), "pre")
                            .Columns({"x"})
                            .Row({"boston"})
                            .Row({"zzz"})
                            .Build());
  ASSERT_TRUE(LoadSnapshot(target, Path("lake.snap")).ok());
  ASSERT_EQ(target.size(), 4u);
  auto idx = target.IndexOf("people");
  ASSERT_TRUE(idx.ok());
  const Table& people = target.table(*idx);
  EXPECT_EQ(people.CellString(0, 2), "boston");
  // The same string must intern to one id across old and new tables.
  EXPECT_EQ(people.cell(0, 2), target.table(0).cell(0, 0));
}

TEST_F(SnapshotTest, RoundTripTpchScale) {
  DataLake lake;
  for (Table& t : GenerateTpch(lake.dict(), TpchConfig{.scale = 0.5})) {
    ASSERT_TRUE(lake.AddTable(std::move(t)).ok());
  }
  ASSERT_TRUE(SaveSnapshot(lake, Path("tpch.snap")).ok());
  DataLake loaded;
  ASSERT_TRUE(LoadSnapshot(loaded, Path("tpch.snap")).ok());
  ASSERT_EQ(loaded.size(), lake.size());
  for (size_t i = 0; i < lake.size(); ++i) {
    EXPECT_EQ(RowsOf(lake.table(i)), RowsOf(loaded.table(i)))
        << lake.table(i).name();
  }
}

TEST_F(SnapshotTest, MissingFileFails) {
  DataLake lake;
  Status s = LoadSnapshot(lake, Path("nope.snap"));
  EXPECT_EQ(s.code(), StatusCode::kIOError);
}

TEST_F(SnapshotTest, BadMagicRejected) {
  std::ofstream out(Path("bad.snap"), std::ios::binary);
  out << "NOTASNAPxxxxxxxxxxxxxxxx";
  out.close();
  DataLake lake;
  Status s = LoadSnapshot(lake, Path("bad.snap"));
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

TEST_F(SnapshotTest, TruncationAtEveryPrefixFailsCleanly) {
  DataLake lake = MakeLake();
  ASSERT_TRUE(SaveSnapshot(lake, Path("lake.snap")).ok());
  std::ifstream in(Path("lake.snap"), std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();
  ASSERT_GT(bytes.size(), 32u);
  // Cut the file at a spread of prefixes; every load must fail with a
  // typed error and never crash. (Skipping prefix 0: an empty file fails
  // at the magic check, also typed.)
  for (size_t cut = 1; cut < bytes.size(); cut += 7) {
    const std::string path = Path("cut.snap");
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(cut));
    out.close();
    DataLake fresh;
    Status s = LoadSnapshot(fresh, path);
    EXPECT_FALSE(s.ok()) << "cut at " << cut << " unexpectedly loaded";
  }
}

TEST_F(SnapshotTest, FutureVersionRejected) {
  DataLake lake = MakeLake();
  ASSERT_TRUE(SaveSnapshot(lake, Path("lake.snap")).ok());
  // Bump the version field (bytes 8..11) to 99.
  std::fstream f(Path("lake.snap"),
                 std::ios::binary | std::ios::in | std::ios::out);
  f.seekp(8);
  uint32_t version = 99;
  f.write(reinterpret_cast<const char*>(&version), sizeof version);
  f.close();
  DataLake fresh;
  Status s = LoadSnapshot(fresh, Path("lake.snap"));
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(s.message().find("version"), std::string::npos);
}

TEST_F(SnapshotTest, NameCollisionRejected) {
  DataLake lake = MakeLake();
  ASSERT_TRUE(SaveSnapshot(lake, Path("lake.snap")).ok());
  DataLake target;
  (void)target.AddTable(TableBuilder(target.dict(), "people")
                            .Columns({"x"})
                            .Row({"1"})
                            .Build());
  Status s = LoadSnapshot(target, Path("lake.snap"));
  EXPECT_FALSE(s.ok());
}

TEST_F(SnapshotTest, LabeledNullsRefuseToSerialize) {
  DataLake lake = MakeLake();
  (void)lake.dict()->CreateLabeledNull();
  Status s = SaveSnapshot(lake, Path("lake.snap"));
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

// --- Snapshot v2 (catalog-carrying, src/storage) -----------------------------

// Saves `lake` as a v2 snapshot, building the catalog the same way the
// engine does.
std::string SaveV2(const DataLake& lake, const std::string& path) {
  GenT gent(lake);
  Status s = SaveSnapshotV2(lake, gent.catalog().section_views(), path);
  EXPECT_TRUE(s.ok()) << s.ToString();
  return path;
}

TEST_F(SnapshotTest, V2RoundTripLoadsTablesAndReportsIdentity) {
  DataLake lake = MakeLake();
  SaveV2(lake, Path("lake.snap2"));
  DataLake loaded;
  SnapshotLoadInfo info;
  ASSERT_TRUE(LoadSnapshot(loaded, Path("lake.snap2"), &info).ok());
  EXPECT_EQ(info.version, 2u);
  // A fresh dictionary re-interns the saved dictionary in id order, so
  // the remap is the identity — the condition for mapped opens.
  EXPECT_TRUE(info.identity_remap);
  ASSERT_EQ(loaded.size(), lake.size());
  for (size_t i = 0; i < lake.size(); ++i) {
    const Table& a = lake.table(i);
    const Table& b = loaded.table(i);
    EXPECT_EQ(a.name(), b.name());
    ASSERT_EQ(a.num_rows(), b.num_rows());
    for (size_t r = 0; r < a.num_rows(); ++r) {
      for (size_t c = 0; c < a.num_cols(); ++c) {
        EXPECT_EQ(a.CellString(r, c), b.CellString(r, c));
      }
    }
  }
}

TEST_F(SnapshotTest, V2LoadIntoPreInternedDictClearsIdentityFlag) {
  DataLake lake = MakeLake();
  SaveV2(lake, Path("lake.snap2"));
  DataLake target;
  // Interning anything first shifts ids, so the remap cannot be the
  // identity and a mapped open would be wrong — the flag must say so.
  (void)target.AddTable(TableBuilder(target.dict(), "pre")
                            .Columns({"x"})
                            .Row({"zzz"})
                            .Build());
  SnapshotLoadInfo info;
  ASSERT_TRUE(LoadSnapshot(target, Path("lake.snap2"), &info).ok());
  EXPECT_EQ(info.version, 2u);
  EXPECT_FALSE(info.identity_remap);
}

TEST_F(SnapshotTest, V2TruncationFailsCleanlyAtStrategicCuts) {
  DataLake lake = MakeLake();
  SaveV2(lake, Path("lake.snap2"));
  std::ifstream in(Path("lake.snap2"), std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();
  const size_t n = bytes.size();
  ASSERT_GT(n, storage::kFooterBytes + storage::kBlockSize);
  // Cuts inside the body, at the section region, inside the footer, and
  // one byte short of complete. Every one must fail typed, never crash,
  // and register nothing.
  std::vector<size_t> cuts = {1,
                              50,
                              storage::kBlockSize - 1,
                              storage::kBlockSize + 17,
                              n / 2,
                              n - storage::kFooterBytes - 1,
                              n - storage::kFooterBytes + 5,
                              n - 9,
                              n - 1};
  for (size_t cut : cuts) {
    ASSERT_LT(cut, n);
    const std::string path = Path("cut.snap2");
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(cut));
    out.close();
    DataLake fresh;
    Status s = LoadSnapshot(fresh, path);
    EXPECT_FALSE(s.ok()) << "cut at " << cut << " unexpectedly loaded";
    EXPECT_EQ(fresh.size(), 0u) << "cut at " << cut;
  }
}

TEST_F(SnapshotTest, V2CorruptedSectionChecksumRejected) {
  DataLake lake = MakeLake();
  SaveV2(lake, Path("lake.snap2"));
  const auto n = std::filesystem::file_size(Path("lake.snap2"));
  // Flip a byte inside the catalog region (after the first block, well
  // clear of the footer).
  std::fstream f(Path("lake.snap2"),
                 std::ios::binary | std::ios::in | std::ios::out);
  const std::streamoff pos = storage::kBlockSize + 64;
  ASSERT_LT(static_cast<uint64_t>(pos), n - storage::kFooterBytes);
  f.seekg(pos);
  char b;
  f.get(b);
  b ^= 0x08;
  f.seekp(pos);
  f.put(b);
  f.close();
  DataLake fresh;
  Status s = LoadSnapshot(fresh, Path("lake.snap2"));
  EXPECT_EQ(s.code(), StatusCode::kIOError);
  EXPECT_EQ(fresh.size(), 0u);
}

TEST_F(SnapshotTest, V1FileRefusesMappedOpen) {
  DataLake lake = MakeLake();
  ASSERT_TRUE(SaveSnapshot(lake, Path("lake.snap")).ok());
  // A v1 snapshot has no catalog tail; treating it as v2 must be a
  // typed refusal, not garbage views.
  auto mapped = storage::MappedCatalog::Open(Path("lake.snap"), {});
  EXPECT_FALSE(mapped.ok());
}

TEST_F(SnapshotTest, V2FutureVersionRejected) {
  DataLake lake = MakeLake();
  SaveV2(lake, Path("lake.snap2"));
  std::fstream f(Path("lake.snap2"),
                 std::ios::binary | std::ios::in | std::ios::out);
  f.seekp(8);
  uint32_t version = 7;
  f.write(reinterpret_cast<const char*>(&version), sizeof version);
  f.close();
  DataLake fresh;
  Status s = LoadSnapshot(fresh, Path("lake.snap2"));
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(s.message().find("version"), std::string::npos);
}

TEST_F(SnapshotTest, CollisionLeavesTargetCompletelyUntouched) {
  // All-or-nothing: a collision on ANY snapshot table must register
  // NONE of them, for both formats.
  DataLake lake = MakeLake();
  ASSERT_TRUE(SaveSnapshot(lake, Path("lake.snap")).ok());
  SaveV2(lake, Path("lake.snap2"));
  for (const char* snap : {"lake.snap", "lake.snap2"}) {
    DataLake target;
    // Collides with "weird" — the LAST table in the snapshot, so a
    // non-atomic loader would have registered "people" and "empty"
    // before noticing.
    (void)target.AddTable(TableBuilder(target.dict(), "weird")
                              .Columns({"q"})
                              .Row({"1"})
                              .Build());
    Status s = LoadSnapshot(target, Path(snap));
    EXPECT_EQ(s.code(), StatusCode::kAlreadyExists) << snap;
    ASSERT_EQ(target.size(), 1u) << snap;
    EXPECT_EQ(target.table(0).name(), "weird");
    EXPECT_EQ(target.table(0).CellString(0, 0), "1");
  }
}

TEST_F(SnapshotTest, V2FullDiskSurfacesTypedError) {
  // Injected ENOSPC at the durability flush — the classic full-disk
  // shape, where every fwrite "succeeded" and the failure surfaces only
  // when the bytes drain. SaveSnapshotV2 must report it, never claim
  // success, and the crash-atomic commit must leave no file behind:
  // neither the destination nor the staging temp.
  DataLake lake = MakeLake();
  GenT gent(lake);
  const std::string path = Path("v2_enospc.snap");
  io::FaultInjector injector;
  io::FaultPlan plan;
  plan.op_mask = io::OpBit(io::Op::kFlush);
  plan.kind = io::FaultKind::kErrno;
  plan.error_code = ENOSPC;
  injector.Arm(plan);
  {
    io::ScopedFaultInjector scope(&injector);
    Status s = SaveSnapshotV2(lake, gent.catalog().section_views(), path);
    EXPECT_EQ(s.code(), StatusCode::kIOError);
  }
  EXPECT_FALSE(std::filesystem::exists(path));
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp." +
                                       std::to_string(::getpid())));
}

}  // namespace
}  // namespace gent
