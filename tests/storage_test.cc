// Tests for the paged storage layer (src/storage): checksums, the
// section writer / footer reader pair, the mmap-backed buffer pool, and
// the catalog pager roundtrip.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <numeric>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/storage/block.h"
#include "src/storage/buffer_pool.h"
#include "src/storage/catalog_pager.h"
#include "src/storage/paged_file.h"

namespace gent::storage {
namespace {

class StorageTest : public ::testing::Test {
 protected:
  StorageTest() {
    dir_ = std::filesystem::temp_directory_path() /
           ("gent_storage_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::create_directories(dir_);
  }
  ~StorageTest() override {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }

  std::string Path(const std::string& name) const {
    return (dir_ / name).string();
  }

  std::filesystem::path dir_;
};

// --- Checksum64 -------------------------------------------------------------

TEST(ChecksumTest, ChunkingDoesNotChangeTheDigest) {
  std::vector<uint8_t> data(1337);
  for (size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<uint8_t>(i * 131 + 7);
  }
  const uint64_t oneshot = Checksum(data.data(), data.size());
  // Feed the same bytes in awkward chunk sizes (1, 3, 7, 64, rest).
  for (size_t chunk : {1u, 3u, 7u, 64u, 1000u}) {
    Checksum64 c;
    for (size_t off = 0; off < data.size(); off += chunk) {
      c.Append(data.data() + off, std::min(chunk, data.size() - off));
    }
    EXPECT_EQ(c.Finish(), oneshot) << "chunk size " << chunk;
  }
}

TEST(ChecksumTest, LengthAndContentBothMatter) {
  std::vector<uint8_t> a(256, 0xAB);
  EXPECT_NE(Checksum(a.data(), 256), Checksum(a.data(), 255));
  std::vector<uint8_t> b = a;
  b[200] ^= 1;
  EXPECT_NE(Checksum(a.data(), 256), Checksum(b.data(), 256));
  // Empty input has a well-defined digest, distinct from one zero byte.
  const uint8_t zero = 0;
  EXPECT_NE(Checksum(nullptr, 0), Checksum(&zero, 1));
}

TEST(ChecksumTest, AlignToBlock) {
  EXPECT_EQ(AlignToBlock(0), 0u);
  EXPECT_EQ(AlignToBlock(1), kBlockSize);
  EXPECT_EQ(AlignToBlock(kBlockSize), kBlockSize);
  EXPECT_EQ(AlignToBlock(kBlockSize + 1), 2 * kBlockSize);
}

// --- SectionWriter / ReadFooter --------------------------------------------

TEST_F(StorageTest, WriterFooterRoundTrip) {
  const std::string path = Path("paged.bin");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  // A fake 100-byte body, then two sections.
  std::vector<uint8_t> body(100, 0x5A);
  ASSERT_EQ(std::fwrite(body.data(), 1, body.size(), f), body.size());

  SectionWriter w(f, body.size());
  w.BeginSection(SectionId::kSpine);
  std::vector<uint32_t> spine(1000);
  std::iota(spine.begin(), spine.end(), 1);
  w.Append(spine.data(), spine.size() * sizeof(uint32_t));
  w.EndSection();
  w.BeginSection(SectionId::kPostCols);
  w.AppendU32(42);
  w.EndSection();
  w.AddBodyDesc(body.size(), Checksum(body.data(), body.size()));
  ASSERT_TRUE(w.Finish(/*version=*/2));
  std::fclose(f);

  f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  auto footer = ReadFooter(f);
  ASSERT_TRUE(footer.ok()) << footer.status().ToString();
  EXPECT_EQ(footer->version, 2u);
  EXPECT_EQ(footer->catalog_begin, AlignToBlock(body.size()));
  ASSERT_EQ(footer->sections.size(), 3u);

  const SectionDesc* spine_desc = footer->Find(SectionId::kSpine);
  ASSERT_NE(spine_desc, nullptr);
  EXPECT_EQ(spine_desc->offset, AlignToBlock(body.size()));
  EXPECT_EQ(spine_desc->bytes, spine.size() * sizeof(uint32_t));
  EXPECT_EQ(spine_desc->offset % kBlockSize, 0u);

  const SectionDesc* body_desc = footer->Find(SectionId::kBody);
  ASSERT_NE(body_desc, nullptr);
  EXPECT_EQ(body_desc->offset, 0u);
  EXPECT_EQ(body_desc->bytes, body.size());

  // Every recorded checksum verifies against the file.
  for (const SectionDesc& desc : footer->sections) {
    EXPECT_TRUE(VerifySectionChecksum(f, desc).ok())
        << "section id " << desc.id;
  }
  std::fclose(f);
}

TEST_F(StorageTest, CorruptedSectionFailsChecksum) {
  const std::string path = Path("corrupt.bin");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  SectionWriter w(f, 0);
  w.BeginSection(SectionId::kSpine);
  std::vector<uint32_t> data(5000, 7);
  w.Append(data.data(), data.size() * sizeof(uint32_t));
  w.EndSection();
  w.AddBodyDesc(0, Checksum(nullptr, 0));
  ASSERT_TRUE(w.Finish(2));
  std::fclose(f);

  // Flip one byte in the middle of the section.
  std::fstream fix(path, std::ios::binary | std::ios::in | std::ios::out);
  fix.seekp(10000);
  char b;
  fix.seekg(10000);
  fix.get(b);
  b ^= 0x40;
  fix.seekp(10000);
  fix.put(b);
  fix.close();

  f = std::fopen(path.c_str(), "rb");
  auto footer = ReadFooter(f);
  ASSERT_TRUE(footer.ok()) << footer.status().ToString();  // footer intact
  const SectionDesc* desc = footer->Find(SectionId::kSpine);
  ASSERT_NE(desc, nullptr);
  Status s = VerifySectionChecksum(f, *desc);
  EXPECT_EQ(s.code(), StatusCode::kIOError);
  EXPECT_NE(s.message().find("checksum"), std::string::npos);
  std::fclose(f);
}

TEST_F(StorageTest, FooterRejectsNonPagedFile) {
  const std::string path = Path("plain.bin");
  std::ofstream out(path, std::ios::binary);
  out << std::string(4096, 'x');
  out.close();
  std::FILE* f = std::fopen(path.c_str(), "rb");
  auto footer = ReadFooter(f);
  EXPECT_EQ(footer.status().code(), StatusCode::kInvalidArgument);
  std::fclose(f);
}

TEST_F(StorageTest, TruncatedFooterRejected) {
  const std::string path = Path("trunc.bin");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  SectionWriter w(f, 0);
  w.BeginSection(SectionId::kSpine);
  w.AppendU32(1);
  w.EndSection();
  w.AddBodyDesc(0, Checksum(nullptr, 0));
  ASSERT_TRUE(w.Finish(2));
  std::fclose(f);
  const auto full = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, full - 13);
  f = std::fopen(path.c_str(), "rb");
  auto footer = ReadFooter(f);
  EXPECT_FALSE(footer.ok());
  std::fclose(f);
}

// --- MappedFile + BufferPool ------------------------------------------------

// Writes `blocks` full blocks of deterministic bytes and returns the path.
std::string WriteBlocks(const std::string& path, size_t blocks) {
  std::ofstream out(path, std::ios::binary);
  std::vector<char> block(kBlockSize);
  for (size_t b = 0; b < blocks; ++b) {
    for (size_t i = 0; i < block.size(); ++i) {
      block[i] = static_cast<char>((b * 31 + i) & 0xFF);
    }
    out.write(block.data(), static_cast<std::streamsize>(block.size()));
  }
  return path;
}

TEST_F(StorageTest, BufferPoolCountsHitsFaultsEvictions) {
  auto mapped = MappedFile::Open(WriteBlocks(Path("pool.bin"), 8));
  if (!mapped.ok()) GTEST_SKIP() << "mmap unavailable on this platform";
  // Capacity 2: at most two unpinned blocks resident at once.
  BufferPool pool(mapped->data(), mapped->size(), /*capacity_blocks=*/2);
  ASSERT_EQ(pool.num_blocks(), 8u);

  // Pin block 0: one fault, resident + pinned, exempt from capacity.
  pool.Pin(0, 1);
  BufferPool::Stats s = pool.stats();
  EXPECT_EQ(s.faults, 1u);
  EXPECT_EQ(s.pinned_blocks, 1u);
  EXPECT_EQ(s.resident_blocks, 1u);

  // Touch two unpinned blocks: two faults, no eviction yet (fits cap).
  pool.Touch(mapped->data() + 1 * kBlockSize, 10);
  pool.Touch(mapped->data() + 2 * kBlockSize, 10);
  s = pool.stats();
  EXPECT_EQ(s.faults, 3u);
  EXPECT_EQ(s.evictions, 0u);
  EXPECT_EQ(s.resident_blocks, 3u);

  // Re-touching a resident block is a hit, not a fault.
  pool.Touch(mapped->data() + 1 * kBlockSize, 10);
  s = pool.stats();
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.faults, 3u);

  // A third unpinned block exceeds capacity: something gets evicted.
  pool.Touch(mapped->data() + 3 * kBlockSize, 10);
  s = pool.stats();
  EXPECT_EQ(s.faults, 4u);
  EXPECT_GE(s.evictions, 1u);
  // Unpinned residents bounded by capacity; the pin never counts.
  EXPECT_LE(s.resident_blocks - s.pinned_blocks, 2u);
  EXPECT_EQ(s.pinned_blocks, 1u);

  // The data under an evicted block is still readable (mapping intact)
  // and re-touching it re-faults.
  const uint64_t faults_before = s.faults;
  for (size_t b = 1; b <= 3; ++b) {
    const uint8_t* p = mapped->data() + b * kBlockSize;
    EXPECT_EQ(p[5], static_cast<uint8_t>((b * 31 + 5) & 0xFF));
    pool.Touch(p, 1);
  }
  s = pool.stats();
  EXPECT_GT(s.faults, faults_before);

  // A Touch spanning a block boundary counts both blocks.
  pool.Pin(6, 2);
  s = pool.stats();
  EXPECT_EQ(s.pinned_blocks, 3u);
  pool.Unpin(6, 2);
  s = pool.stats();
  EXPECT_EQ(s.pinned_blocks, 1u);
}

TEST_F(StorageTest, BufferPoolUnboundedNeverEvicts) {
  auto mapped = MappedFile::Open(WriteBlocks(Path("pool0.bin"), 4));
  if (!mapped.ok()) GTEST_SKIP() << "mmap unavailable on this platform";
  BufferPool pool(mapped->data(), mapped->size(), /*capacity_blocks=*/0);
  for (size_t b = 0; b < 4; ++b) {
    pool.Touch(mapped->data() + b * kBlockSize, kBlockSize);
  }
  BufferPool::Stats s = pool.stats();
  EXPECT_EQ(s.faults, 4u);
  EXPECT_EQ(s.evictions, 0u);
  EXPECT_EQ(s.resident_blocks, 4u);
  EXPECT_EQ(pool.resident_bytes(), 4 * uint64_t{kBlockSize});
}

TEST_F(StorageTest, NestedPinsReleaseInOrder) {
  auto mapped = MappedFile::Open(WriteBlocks(Path("pins.bin"), 2));
  if (!mapped.ok()) GTEST_SKIP() << "mmap unavailable on this platform";
  BufferPool pool(mapped->data(), mapped->size(), /*capacity_blocks=*/1);
  pool.Pin(0, 1);
  pool.Pin(0, 1);  // nested
  pool.Unpin(0, 1);
  // Still pinned after one release.
  EXPECT_EQ(pool.stats().pinned_blocks, 1u);
  pool.Unpin(0, 1);
  EXPECT_EQ(pool.stats().pinned_blocks, 0u);
}

TEST_F(StorageTest, MappedFileRejectsMissingAndEmpty) {
  EXPECT_FALSE(MappedFile::Open(Path("missing.bin")).ok());
  std::ofstream(Path("empty.bin"), std::ios::binary).close();
  EXPECT_FALSE(MappedFile::Open(Path("empty.bin")).ok());
}

// --- Catalog pager roundtrip ------------------------------------------------

// Builds a tiny but structurally complete catalog: 3 columns, a spine of
// the distinct union, CSR postings mapping each spine value to the
// columns containing it.
struct TinyCatalog {
  std::vector<std::vector<uint32_t>> cols = {{1, 2, 3}, {2, 3, 4}, {5}};
  std::vector<uint32_t> spine = {1, 2, 3, 4, 5};
  std::vector<uint32_t> post_offsets = {0, 1, 3, 5, 6, 7};
  std::vector<uint32_t> post_cols = {0, 0, 1, 0, 1, 1, 2};

  CatalogSectionViews views() const {
    CatalogSectionViews v;
    for (const auto& c : cols) v.columns.emplace_back(c);
    v.spine = Span<uint32_t>(spine);
    v.post_offsets = Span<uint32_t>(post_offsets);
    v.post_cols = Span<uint32_t>(post_cols);
    return v;
  }
};

// Writes a fake body + the tiny catalog tail; returns body checksum.
uint64_t WriteTinySnapshot(const std::string& path, const TinyCatalog& cat,
                           uint32_t version = 2) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  EXPECT_NE(f, nullptr);
  std::vector<uint8_t> body(777, 0x11);
  EXPECT_EQ(std::fwrite(body.data(), 1, body.size(), f), body.size());
  const uint64_t body_sum = Checksum(body.data(), body.size());
  Status s =
      AppendCatalogSections(f, body.size(), body_sum, cat.views(), version);
  EXPECT_TRUE(s.ok()) << s.ToString();
  std::fclose(f);
  return body_sum;
}

TEST_F(StorageTest, MappedCatalogRoundTrip) {
  TinyCatalog cat;
  const std::string path = Path("tiny.snap");
  const uint64_t body_sum = WriteTinySnapshot(path, cat);

  // Streaming validation agrees end to end.
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  EXPECT_TRUE(ValidateCatalogTail(f, 2, 777, body_sum).ok());
  // Wrong body checksum or version must be caught.
  EXPECT_FALSE(ValidateCatalogTail(f, 2, 777, body_sum ^ 1).ok());
  EXPECT_FALSE(ValidateCatalogTail(f, 3, 777, body_sum).ok());
  std::fclose(f);

  auto mapped = MappedCatalog::Open(path, {});
  if (!mapped.ok() &&
      mapped.status().code() == StatusCode::kInternal) {
    GTEST_SKIP() << "mmap unavailable on this platform";
  }
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
  const CatalogSectionViews& v = (*mapped)->views();
  ASSERT_EQ(v.columns.size(), cat.cols.size());
  for (size_t c = 0; c < cat.cols.size(); ++c) {
    ASSERT_EQ(v.columns[c].size(), cat.cols[c].size());
    for (size_t i = 0; i < cat.cols[c].size(); ++i) {
      EXPECT_EQ(v.columns[c][i], cat.cols[c][i]);
    }
  }
  ASSERT_EQ(v.spine.size(), cat.spine.size());
  EXPECT_TRUE(std::equal(v.spine.begin(), v.spine.end(), cat.spine.begin()));
  ASSERT_EQ(v.post_offsets.size(), cat.post_offsets.size());
  EXPECT_TRUE(std::equal(v.post_offsets.begin(), v.post_offsets.end(),
                         cat.post_offsets.begin()));
  ASSERT_EQ(v.post_cols.size(), cat.post_cols.size());
  EXPECT_TRUE(std::equal(v.post_cols.begin(), v.post_cols.end(),
                         cat.post_cols.begin()));
  // The hot spine is pinned at open.
  EXPECT_GT((*mapped)->pool().stats().pinned_blocks, 0u);
}

TEST_F(StorageTest, MappedCatalogRejectsBrokenCsr) {
  TinyCatalog cat;
  cat.post_offsets.back() = 99;  // bracket must equal post_cols size
  const std::string path = Path("badcsr.snap");
  WriteTinySnapshot(path, cat);
  auto mapped = MappedCatalog::Open(path, {});
  if (!mapped.ok() &&
      mapped.status().code() == StatusCode::kInternal) {
    GTEST_SKIP() << "mmap unavailable on this platform";
  }
  EXPECT_FALSE(mapped.ok());
}

TEST_F(StorageTest, MappedCatalogRejectsVersion1Tail) {
  // A footer claiming version 1 must be refused: v1 has no catalog.
  TinyCatalog cat;
  const std::string path = Path("v1tail.snap");
  WriteTinySnapshot(path, cat, /*version=*/1);
  auto mapped = MappedCatalog::Open(path, {});
  if (!mapped.ok() &&
      mapped.status().code() == StatusCode::kInternal) {
    GTEST_SKIP() << "mmap unavailable on this platform";
  }
  EXPECT_FALSE(mapped.ok());
}

}  // namespace
}  // namespace gent::storage
