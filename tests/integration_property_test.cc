// Property tests for Table Integration (Algorithm 2): invariants over
// seeded random originating-table sets, complementing the example-based
// tests in integration_test.cc.

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/integration/integrator.h"
#include "src/metrics/similarity.h"
#include "src/table/table_builder.h"
#include "src/util/random.h"

namespace gent {
namespace {

struct IntegrationCase {
  DictionaryPtr dict;
  std::unique_ptr<Table> source;
  std::vector<Table> tables;
};

// A keyed source plus randomized fragments: vertical splits with random
// row subsets, random nullification, and an optional noise table with
// disjoint keys.
IntegrationCase MakeCase(uint64_t seed) {
  IntegrationCase out;
  out.dict = MakeDictionary();
  Rng rng(seed);
  const size_t rows = 5 + rng.Index(12);
  TableBuilder sb(out.dict, "source");
  sb.Columns({"k", "a", "b", "c"});
  std::vector<std::vector<std::string>> data;
  for (size_t r = 0; r < rows; ++r) {
    std::vector<std::string> row = {
        "k" + std::to_string(r),
        rng.Bernoulli(0.1) ? "" : "a" + std::to_string(rng.Index(9)),
        rng.Bernoulli(0.1) ? "" : "b" + std::to_string(rng.Index(9)),
        rng.Bernoulli(0.1) ? "" : "c" + std::to_string(rng.Index(9))};
    data.push_back(row);
    sb.Row(row);
  }
  out.source = std::make_unique<Table>(sb.Key({"k"}).Build());

  const size_t n_fragments = 2 + rng.Index(3);
  for (size_t t = 0; t < n_fragments; ++t) {
    const bool left = rng.Bernoulli(0.5);
    std::vector<std::string> cols =
        left ? std::vector<std::string>{"k", "a", "b"}
             : std::vector<std::string>{"k", "b", "c"};
    TableBuilder tb(out.dict, "frag" + std::to_string(t));
    tb.Columns(cols);
    for (const auto& row : data) {
      if (rng.Bernoulli(0.25)) continue;
      std::vector<std::string> cells = {row[0]};
      if (left) {
        cells.push_back(rng.Bernoulli(0.2) ? "" : row[1]);
        cells.push_back(rng.Bernoulli(0.2) ? "" : row[2]);
      } else {
        cells.push_back(rng.Bernoulli(0.2) ? "" : row[2]);
        cells.push_back(rng.Bernoulli(0.2) ? "" : row[3]);
      }
      tb.Row(cells);
    }
    out.tables.push_back(tb.Build());
  }
  return out;
}

class IntegrationSweep : public ::testing::TestWithParam<int> {};

TEST_P(IntegrationSweep, OutputHasExactlySourceSchema) {
  IntegrationCase c = MakeCase(GetParam() * 6151 + 1);
  auto result = IntegrateTables(*c.source, c.tables);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->column_names(), c.source->column_names());
}

TEST_P(IntegrationSweep, NoLabeledNullsLeak) {
  IntegrationCase c = MakeCase(GetParam() * 409 + 3);
  auto result = IntegrateTables(*c.source, c.tables);
  ASSERT_TRUE(result.ok());
  for (size_t r = 0; r < result->num_rows(); ++r) {
    for (size_t col = 0; col < result->num_cols(); ++col) {
      EXPECT_FALSE(c.dict->IsLabeledNull(result->cell(r, col)))
          << "labeled null leaked at (" << r << "," << col << ")";
    }
  }
}

TEST_P(IntegrationSweep, OnlySourceKeysInOutput) {
  // ProjectSelect (line 3) keeps only tuples whose key occurs in the
  // source, so every output row carries a source key or a null key.
  IntegrationCase c = MakeCase(GetParam() * 811 + 5);
  auto result = IntegrateTables(*c.source, c.tables);
  ASSERT_TRUE(result.ok());
  KeyIndex source_keys = c.source->BuildKeyIndex();
  auto key_col = result->ColumnIndex("k");
  ASSERT_TRUE(key_col.has_value());
  for (size_t r = 0; r < result->num_rows(); ++r) {
    const ValueId k = result->cell(r, *key_col);
    if (k == kNull) continue;
    EXPECT_TRUE(source_keys.count(KeyTuple{k}))
        << "foreign key value in output: " << result->CellString(r, *key_col);
  }
}

TEST_P(IntegrationSweep, SourceItselfIntegratesPerfectly) {
  IntegrationCase c = MakeCase(GetParam() * 2003 + 7);
  std::vector<Table> just_source;
  just_source.push_back(c.source->Clone());
  auto result = IntegrateTables(*c.source, just_source);
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(EisScore(*c.source, *result).value(), 1.0);
}

TEST_P(IntegrationSweep, DisjointKeyNoiseIsHarmless) {
  IntegrationCase c = MakeCase(GetParam() * 3571 + 11);
  auto baseline = IntegrateTables(*c.source, c.tables);
  ASSERT_TRUE(baseline.ok());
  const double eis_before = EisScore(*c.source, *baseline).value();

  Rng rng(GetParam());
  TableBuilder noise(c.dict, "noise");
  noise.Columns({"k", "a", "b", "c"});
  for (size_t r = 0; r < 10; ++r) {
    noise.Row({"foreign" + std::to_string(r), "x", "y", "z"});
  }
  c.tables.push_back(noise.Build());
  auto with_noise = IntegrateTables(*c.source, c.tables);
  ASSERT_TRUE(with_noise.ok());
  EXPECT_DOUBLE_EQ(EisScore(*c.source, *with_noise).value(), eis_before)
      << "tuples with non-source keys must be selected away";
}

TEST_P(IntegrationSweep, InputOrderDoesNotChangeEis) {
  IntegrationCase c = MakeCase(GetParam() * 6863 + 13);
  auto forward = IntegrateTables(*c.source, c.tables);
  std::reverse(c.tables.begin(), c.tables.end());
  auto backward = IntegrateTables(*c.source, c.tables);
  ASSERT_TRUE(forward.ok());
  ASSERT_TRUE(backward.ok());
  EXPECT_NEAR(EisScore(*c.source, *forward).value(),
              EisScore(*c.source, *backward).value(), 1e-9);
}

TEST_P(IntegrationSweep, GuardsNeverHurt) {
  // The guarded pipeline must score at least as well as the unguarded
  // ablation on every input (the guards only accept improvements).
  IntegrationCase c = MakeCase(GetParam() * 9001 + 17);
  IntegrationOptions guarded;
  IntegrationOptions unguarded;
  unguarded.guard_operators = false;
  auto with_guards = IntegrateTables(*c.source, c.tables, guarded);
  auto without = IntegrateTables(*c.source, c.tables, unguarded);
  ASSERT_TRUE(with_guards.ok());
  ASSERT_TRUE(without.ok());
  EXPECT_GE(EisScore(*c.source, *with_guards).value() + 1e-9,
            EisScore(*c.source, *without).value());
}

TEST_P(IntegrationSweep, IntegrationIsIdempotentOnItsOutput) {
  // Feeding the reclaimed table back in cannot change the score.
  IntegrationCase c = MakeCase(GetParam() * 557 + 19);
  auto once = IntegrateTables(*c.source, c.tables);
  ASSERT_TRUE(once.ok());
  std::vector<Table> again;
  again.push_back(once->Clone());
  auto twice = IntegrateTables(*c.source, again);
  ASSERT_TRUE(twice.ok());
  EXPECT_GE(EisScore(*c.source, *twice).value() + 1e-9,
            EisScore(*c.source, *once).value());
}

INSTANTIATE_TEST_SUITE_P(Seeds, IntegrationSweep, ::testing::Range(1, 15));

}  // namespace
}  // namespace gent
