#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "src/table/table.h"
#include "src/table/table_builder.h"
#include "src/table/table_io.h"
#include "src/value/dictionary.h"

namespace gent {
namespace {

// --- Dictionary -------------------------------------------------------------

TEST(DictionaryTest, EmptyStringIsNull) {
  ValueDictionary dict;
  EXPECT_EQ(dict.Intern(""), kNull);
  EXPECT_EQ(dict.Lookup(""), kNull);
  EXPECT_EQ(dict.StringOf(kNull), "");
}

TEST(DictionaryTest, InternIsIdempotent) {
  ValueDictionary dict;
  ValueId a = dict.Intern("hello");
  ValueId b = dict.Intern("hello");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, kNull);
  EXPECT_EQ(dict.StringOf(a), "hello");
}

TEST(DictionaryTest, DistinctStringsGetDistinctIds) {
  ValueDictionary dict;
  EXPECT_NE(dict.Intern("a"), dict.Intern("b"));
}

TEST(DictionaryTest, NumericSpellingsCollapse) {
  ValueDictionary dict;
  EXPECT_EQ(dict.Intern("3.10"), dict.Intern("3.1"));
  EXPECT_EQ(dict.Intern("007"), dict.Intern("7"));
}

TEST(DictionaryTest, LookupWithoutIntern) {
  ValueDictionary dict;
  EXPECT_EQ(dict.Lookup("ghost"), kNull);
  dict.Intern("ghost");
  EXPECT_NE(dict.Lookup("ghost"), kNull);
}

TEST(DictionaryTest, LabeledNullsAreUniqueNonValues) {
  ValueDictionary dict;
  ValueId l1 = dict.CreateLabeledNull();
  ValueId l2 = dict.CreateLabeledNull();
  EXPECT_NE(l1, l2);
  EXPECT_NE(l1, kNull);
  EXPECT_TRUE(dict.IsLabeledNull(l1));
  EXPECT_TRUE(dict.IsLabeledNull(l2));
  EXPECT_FALSE(dict.IsLabeledNull(kNull));
  EXPECT_FALSE(dict.IsLabeledNull(dict.Intern("real")));
}

// --- Table -------------------------------------------------------------------

class TableTest : public ::testing::Test {
 protected:
  DictionaryPtr dict_ = MakeDictionary();

  Table Sample() {
    return TableBuilder(dict_, "t")
        .Columns({"id", "name", "age"})
        .Row({"0", "Smith", "27"})
        .Row({"1", "Brown", ""})
        .Row({"2", "Wang", "32"})
        .Key({"id"})
        .Build();
  }
};

TEST_F(TableTest, Dimensions) {
  Table t = Sample();
  EXPECT_EQ(t.num_rows(), 3u);
  EXPECT_EQ(t.num_cols(), 3u);
  EXPECT_EQ(t.num_cells(), 9u);
}

TEST_F(TableTest, CellAccess) {
  Table t = Sample();
  EXPECT_EQ(t.CellString(0, 1), "Smith");
  EXPECT_EQ(t.cell(1, 2), kNull);  // Brown's age missing
  EXPECT_EQ(t.CellString(2, 2), "32");
}

TEST_F(TableTest, ColumnIndexLookup) {
  Table t = Sample();
  EXPECT_EQ(*t.ColumnIndex("name"), 1u);
  EXPECT_FALSE(t.ColumnIndex("ghost").has_value());
  EXPECT_TRUE(t.HasColumn("age"));
}

TEST_F(TableTest, AddColumnRejectsDuplicate) {
  Table t = Sample();
  EXPECT_TRUE(t.AddColumn("extra").ok());
  EXPECT_EQ(t.cell(0, 3), kNull);  // new column padded with nulls
  EXPECT_EQ(t.AddColumn("name").code(), StatusCode::kAlreadyExists);
}

TEST_F(TableTest, RenameColumn) {
  Table t = Sample();
  EXPECT_TRUE(t.RenameColumn(1, "full_name").ok());
  EXPECT_TRUE(t.HasColumn("full_name"));
  EXPECT_FALSE(t.HasColumn("name"));
  EXPECT_EQ(t.RenameColumn(0, "full_name").code(),
            StatusCode::kAlreadyExists);
  EXPECT_TRUE(t.RenameColumn(0, "id").ok());  // self-rename is fine
}

TEST_F(TableTest, KeyDesignation) {
  Table t = Sample();
  EXPECT_TRUE(t.has_key());
  EXPECT_TRUE(t.IsKeyColumn(0));
  EXPECT_FALSE(t.IsKeyColumn(1));
  EXPECT_EQ(t.KeyOf(1), KeyTuple{t.dict()->Lookup("1")});
}

TEST_F(TableTest, SetKeyColumnsValidates) {
  Table t = Sample();
  EXPECT_EQ(t.SetKeyColumns({9}).code(), StatusCode::kOutOfRange);
  EXPECT_EQ(t.SetKeyColumns({0, 0}).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(t.SetKeyColumnsByName({"nope"}).code(), StatusCode::kNotFound);
  EXPECT_TRUE(t.SetKeyColumnsByName({"id", "name"}).ok());
  EXPECT_EQ(t.key_columns().size(), 2u);
}

TEST_F(TableTest, KeyIndexGroupsRows) {
  Table t = TableBuilder(dict_, "dups")
                .Columns({"k", "v"})
                .Row({"a", "1"})
                .Row({"b", "2"})
                .Row({"a", "3"})
                .Key({"k"})
                .Build();
  KeyIndex idx = t.BuildKeyIndex();
  EXPECT_EQ(idx.size(), 2u);
  EXPECT_EQ(idx[KeyTuple{dict_->Lookup("a")}].size(), 2u);
}

TEST_F(TableTest, RemoveRows) {
  Table t = Sample();
  t.RemoveRows({0, 2});
  ASSERT_EQ(t.num_rows(), 1u);
  EXPECT_EQ(t.CellString(0, 1), "Brown");
}

TEST_F(TableTest, RemoveNoRowsIsNoop) {
  Table t = Sample();
  t.RemoveRows({});
  EXPECT_EQ(t.num_rows(), 3u);
}

TEST_F(TableTest, CloneIsDeep) {
  Table t = Sample();
  Table copy = t.Clone();
  copy.set_cell(0, 1, kNull);
  EXPECT_EQ(t.CellString(0, 1), "Smith");
  EXPECT_EQ(copy.cell(0, 1), kNull);
}

TEST_F(TableTest, RowMaterialization) {
  Table t = Sample();
  auto row = t.Row(0);
  ASSERT_EQ(row.size(), 3u);
  EXPECT_EQ(row[1], dict_->Lookup("Smith"));
  EXPECT_EQ(t.RowNonNullCount(1), 2u);  // Brown's age is null
}

TEST_F(TableTest, ToStringMentionsNameAndKey) {
  Table t = Sample();
  std::string s = t.ToString();
  EXPECT_NE(s.find("t ["), std::string::npos);
  EXPECT_NE(s.find("id*"), std::string::npos);  // key marker
}

// --- CSV IO -------------------------------------------------------------------

class TableIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("gent_io_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  DictionaryPtr dict_ = MakeDictionary();
  std::filesystem::path dir_;
};

TEST_F(TableIoTest, RoundTripSimple) {
  Table t = TableBuilder(dict_, "rt")
                .Columns({"a", "b"})
                .Row({"1", "x"})
                .Row({"2", ""})
                .Build();
  std::string path = (dir_ / "rt.csv").string();
  ASSERT_TRUE(WriteCsv(t, path).ok());
  auto loaded = ReadCsv(dict_, "rt", path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->num_rows(), 2u);
  EXPECT_EQ(loaded->CellString(0, 1), "x");
  EXPECT_EQ(loaded->cell(1, 1), kNull);
}

TEST_F(TableIoTest, RoundTripQuotingAndEscapes) {
  Table t = TableBuilder(dict_, "q")
                .Columns({"text"})
                .Row({"has,comma"})
                .Row({"has \"quote\""})
                .Row({"has\nnewline"})
                .Build();
  std::string path = (dir_ / "q.csv").string();
  ASSERT_TRUE(WriteCsv(t, path).ok());
  auto loaded = ReadCsv(dict_, "q", path);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->num_rows(), 3u);
  EXPECT_EQ(loaded->CellString(0, 0), "has,comma");
  EXPECT_EQ(loaded->CellString(1, 0), "has \"quote\"");
  EXPECT_EQ(loaded->CellString(2, 0), "has\nnewline");
}

TEST_F(TableIoTest, ParseRejectsRaggedRows) {
  auto r = ParseCsvText(dict_, "bad", "a,b\n1,2,3\n");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(TableIoTest, ParseRejectsUnterminatedQuote) {
  auto r = ParseCsvText(dict_, "bad", "a\n\"oops\n");
  EXPECT_FALSE(r.ok());
}

TEST_F(TableIoTest, ParseToleratesCrlfAndMissingTrailingNewline) {
  auto r = ParseCsvText(dict_, "crlf", "a,b\r\n1,2\r\n3,4");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->num_rows(), 2u);
  EXPECT_EQ(r->CellString(1, 1), "4");
}

TEST_F(TableIoTest, ReadMissingFileFails) {
  auto r = ReadCsv(dict_, "x", (dir_ / "nope.csv").string());
  EXPECT_EQ(r.status().code(), StatusCode::kIOError);
}

TEST_F(TableIoTest, DirectoryRoundTrip) {
  std::vector<Table> tables;
  tables.push_back(TableBuilder(dict_, "one").Columns({"a"}).Row({"1"}).Build());
  tables.push_back(TableBuilder(dict_, "two").Columns({"b"}).Row({"2"}).Build());
  std::string sub = (dir_ / "lake").string();
  ASSERT_TRUE(WriteTableDirectory(tables, sub).ok());
  auto loaded = ReadTableDirectory(dict_, sub);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->size(), 2u);
}

}  // namespace
}  // namespace gent
