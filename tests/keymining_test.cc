// Tests for candidate-key discovery (src/keymining).

#include "src/keymining/key_miner.h"

#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/benchgen/tpch.h"
#include "src/table/table_builder.h"
#include "src/util/random.h"

namespace gent {
namespace {

Table ApplicantsTable(const DictionaryPtr& dict) {
  // The paper's running example (Fig. 3 source), with the intended key "ID".
  return TableBuilder(dict, "applicants")
      .Columns({"ID", "Name", "Age", "Gender", "Education Level"})
      .Row({"0", "Smith", "27", "", "Bachelors"})
      .Row({"1", "Brown", "24", "Male", "Masters"})
      .Row({"2", "Wang", "32", "Female", "High School"})
      .Build();
}

TEST(KeyMinerTest, FindsSingleColumnKeyOnPaperExample) {
  auto dict = MakeDictionary();
  Table t = ApplicantsTable(dict);
  KeyMiner miner;
  std::vector<CandidateKey> keys = miner.Mine(t);
  ASSERT_FALSE(keys.empty());
  // "ID" and "Name" are both unique and non-null; "ID" (position 0,
  // shorter values) must rank first.
  EXPECT_EQ(keys.front().columns, std::vector<size_t>({0}));
  EXPECT_DOUBLE_EQ(keys.front().uniqueness, 1.0);
  EXPECT_DOUBLE_EQ(keys.front().non_null_fraction, 1.0);
}

TEST(KeyMinerTest, AllMinedKeysAreUniqueAndNullFree) {
  auto dict = MakeDictionary();
  Table t = ApplicantsTable(dict);
  for (const CandidateKey& key : KeyMiner().Mine(t)) {
    EXPECT_DOUBLE_EQ(key.uniqueness, 1.0);
    EXPECT_DOUBLE_EQ(key.non_null_fraction, 1.0);
    EXPECT_GT(key.score, 0.0);
    EXPECT_LE(key.score, 1.0 + 1e-9);
  }
}

TEST(KeyMinerTest, NullableColumnIsNotAStrictKey) {
  auto dict = MakeDictionary();
  Table t = TableBuilder(dict, "t")
                .Columns({"a", "b"})
                .Row({"1", "x"})
                .Row({"", "y"})
                .Row({"3", "z"})
                .Build();
  std::vector<CandidateKey> keys = KeyMiner().Mine(t);
  ASSERT_FALSE(keys.empty());
  // "a" has a null; only "b" qualifies as a strict single-column key.
  EXPECT_EQ(keys.front().columns, std::vector<size_t>({1}));
  for (const CandidateKey& key : keys) {
    EXPECT_EQ(key.columns.size(), 1u);
    EXPECT_NE(key.columns[0], 0u);
  }
}

TEST(KeyMinerTest, RelaxedNullToleranceAdmitsNullableColumn) {
  auto dict = MakeDictionary();
  Table t = TableBuilder(dict, "t")
                .Columns({"a", "b"})
                .Row({"1", "x"})
                .Row({"", "x"})
                .Row({"3", "x"})
                .Build();
  // "b" is constant (not unique); "a" is unique but 1/3 null.
  EXPECT_TRUE(KeyMiner().Mine(t).empty());
  KeyMinerOptions options;
  options.min_non_null_fraction = 0.6;
  std::vector<CandidateKey> keys = KeyMiner(options).Mine(t);
  ASSERT_FALSE(keys.empty());
  EXPECT_EQ(keys.front().columns, std::vector<size_t>({0}));
  EXPECT_NEAR(keys.front().non_null_fraction, 2.0 / 3.0, 1e-12);
}

TEST(KeyMinerTest, FindsCompositeKeyWhenNoSingleColumnIsUnique) {
  auto dict = MakeDictionary();
  // Classic enrollment shape: (student, course) is the only key.
  Table t = TableBuilder(dict, "enrollment")
                .Columns({"student", "course", "grade"})
                .Row({"s1", "c1", "A"})
                .Row({"s1", "c2", "B"})
                .Row({"s2", "c1", "A"})
                .Row({"s2", "c2", "A"})
                .Build();
  std::vector<CandidateKey> keys = KeyMiner().Mine(t);
  ASSERT_FALSE(keys.empty());
  EXPECT_EQ(keys.front().columns, std::vector<size_t>({0, 1}));
}

TEST(KeyMinerTest, MinimalityNoKeyContainsAnother) {
  auto dict = MakeDictionary();
  Table t = TableBuilder(dict, "t")
                .Columns({"id", "a", "b"})
                .Row({"1", "x", "p"})
                .Row({"2", "x", "q"})
                .Row({"3", "y", "p"})
                .Build();
  std::vector<CandidateKey> keys = KeyMiner().Mine(t);
  for (const CandidateKey& k1 : keys) {
    for (const CandidateKey& k2 : keys) {
      if (&k1 == &k2) continue;
      EXPECT_FALSE(std::includes(k1.columns.begin(), k1.columns.end(),
                                 k2.columns.begin(), k2.columns.end()))
          << "key is a superset of another mined key";
    }
  }
}

TEST(KeyMinerTest, DuplicateRowsYieldNoKey) {
  auto dict = MakeDictionary();
  Table t = TableBuilder(dict, "dup")
                .Columns({"a", "b"})
                .Row({"1", "x"})
                .Row({"1", "x"})
                .Build();
  EXPECT_TRUE(KeyMiner().Mine(t).empty());
  Table copy = t.Clone();
  Status s = KeyMiner().AssignBestKey(copy);
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
}

TEST(KeyMinerTest, EmptyTableYieldsNoKey) {
  auto dict = MakeDictionary();
  Table t = TableBuilder(dict, "empty").Columns({"a"}).Build();
  EXPECT_TRUE(KeyMiner().Mine(t).empty());
}

TEST(KeyMinerTest, AssignBestKeyInstallsKey) {
  auto dict = MakeDictionary();
  Table t = ApplicantsTable(dict);
  ASSERT_TRUE(KeyMiner().AssignBestKey(t).ok());
  ASSERT_TRUE(t.has_key());
  EXPECT_EQ(t.key_columns(), std::vector<size_t>({0}));
}

TEST(KeyMinerTest, ArityBoundIsRespected) {
  auto dict = MakeDictionary();
  // Only the full 3-column combination is unique.
  Table t = TableBuilder(dict, "t")
                .Columns({"a", "b", "c"})
                .Row({"1", "1", "1"})
                .Row({"1", "1", "2"})
                .Row({"1", "2", "1"})
                .Row({"2", "1", "1"})
                .Row({"1", "2", "2"})
                .Row({"2", "1", "2"})
                .Row({"2", "2", "1"})
                .Row({"2", "2", "2"})
                .Build();
  KeyMinerOptions narrow;
  narrow.max_key_arity = 2;
  EXPECT_TRUE(KeyMiner(narrow).Mine(t).empty());
  KeyMinerOptions wide;
  wide.max_key_arity = 3;
  std::vector<CandidateKey> keys = KeyMiner(wide).Mine(t);
  ASSERT_EQ(keys.size(), 1u);
  EXPECT_EQ(keys.front().columns, std::vector<size_t>({0, 1, 2}));
}

TEST(KeyMinerTest, RecoversTpchPrimaryKeys) {
  // The miner must find the true PK of every generated TPC-H table as a
  // (possibly non-top-ranked) minimal candidate.
  auto dict = MakeDictionary();
  std::vector<Table> tables =
      GenerateTpch(dict, TpchConfig{.scale = 0.2, .seed = 7});
  KeyMiner miner;
  for (const Table& t : tables) {
    ASSERT_TRUE(t.has_key()) << t.name();
    std::vector<size_t> expected = t.key_columns();
    std::sort(expected.begin(), expected.end());
    std::vector<CandidateKey> keys = miner.Mine(t);
    ASSERT_FALSE(keys.empty()) << t.name();
    const bool found =
        std::any_of(keys.begin(), keys.end(), [&](const CandidateKey& k) {
          return k.columns == expected;
        });
    // The true PK is unique+non-null, so if absent it must be because a
    // *subset* of it already qualifies (minimality) — accept that too.
    const bool subset_found =
        std::any_of(keys.begin(), keys.end(), [&](const CandidateKey& k) {
          return std::includes(expected.begin(), expected.end(),
                               k.columns.begin(), k.columns.end());
        });
    EXPECT_TRUE(found || subset_found)
        << t.name() << ": true PK (or a unique subset) not mined";
  }
}

TEST(ColumnProfileTest, CountsDistinctNullsAndLengths) {
  auto dict = MakeDictionary();
  Table t = TableBuilder(dict, "t")
                .Columns({"a"})
                .Row({"aa"})
                .Row({"bbbb"})
                .Row({""})
                .Row({"aa"})
                .Build();
  ColumnProfile p = ProfileColumn(t, 0);
  EXPECT_EQ(p.distinct_non_null, 2u);
  EXPECT_EQ(p.null_count, 1u);
  EXPECT_NEAR(p.avg_value_length, (2 + 4 + 2) / 3.0, 1e-12);
  EXPECT_NEAR(p.uniqueness, 2.0 / 3.0, 1e-12);
}

// Property sweep: on random unique-first-column tables of varying shape,
// the miner's top key must be exactly column 0.
class KeyMinerRandomSweep : public ::testing::TestWithParam<int> {};

TEST_P(KeyMinerRandomSweep, UniqueIdColumnAlwaysWins) {
  const int seed = GetParam();
  Rng rng(static_cast<uint64_t>(seed));
  auto dict = MakeDictionary();
  const size_t rows = 20 + rng.Index(60);
  const size_t extra_cols = 2 + rng.Index(4);
  TableBuilder builder(dict, "rand");
  std::vector<std::string> cols = {"id"};
  for (size_t c = 0; c < extra_cols; ++c) cols.push_back("c" + std::to_string(c));
  builder.Columns(cols);
  for (size_t r = 0; r < rows; ++r) {
    std::vector<std::string> row = {std::to_string(r)};
    for (size_t c = 0; c < extra_cols; ++c) {
      // Low-cardinality noise columns: never unique for rows >= 20.
      row.push_back("v" + std::to_string(rng.Index(8)));
    }
    builder.Row(row);
  }
  Table t = builder.Build();
  std::vector<CandidateKey> keys = KeyMiner().Mine(t);
  ASSERT_FALSE(keys.empty());
  EXPECT_EQ(keys.front().columns, std::vector<size_t>({0}));
}

INSTANTIATE_TEST_SUITE_P(Seeds, KeyMinerRandomSweep,
                         ::testing::Range(1, 13));

}  // namespace
}  // namespace gent
