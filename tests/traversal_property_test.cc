// Property tests for Matrix Traversal (Algorithm 1): selection
// invariants that must hold on any input, checked on randomized
// fragment lakes with injected noise.

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/matrix/traversal.h"
#include "src/metrics/similarity.h"
#include "src/table/table_builder.h"
#include "src/util/random.h"

namespace gent {
namespace {

// A keyed source plus a set of candidate tables: clean vertical
// fragments, nullified variants, and an erroneous variant whose non-key
// values are all wrong.
struct TraversalCase {
  std::unique_ptr<Table> source;
  std::vector<Table> tables;
  size_t erroneous_index = SIZE_MAX;
};

TraversalCase MakeCase(uint64_t seed) {
  TraversalCase out;
  auto dict = MakeDictionary();
  Rng rng(seed);
  const size_t rows = 6 + rng.Index(10);
  TableBuilder sb(dict, "source");
  sb.Columns({"k", "a", "b", "c"});
  std::vector<std::vector<std::string>> data;
  for (size_t r = 0; r < rows; ++r) {
    std::vector<std::string> row = {
        "key" + std::to_string(r), "av" + std::to_string(rng.Index(12)),
        "bv" + std::to_string(rng.Index(12)),
        "cv" + std::to_string(rng.Index(12))};
    data.push_back(row);
    sb.Row(row);
  }
  out.source = std::make_unique<Table>(sb.Key({"k"}).Build());

  // Clean fragments covering {a,b} and {c}.
  TableBuilder f1(dict, "frag_ab");
  f1.Columns({"k", "a", "b"});
  for (const auto& row : data) f1.Row({row[0], row[1], row[2]});
  out.tables.push_back(f1.Build());
  TableBuilder f2(dict, "frag_c");
  f2.Columns({"k", "c"});
  for (const auto& row : data) f2.Row({row[0], row[3]});
  out.tables.push_back(f2.Build());
  // A nullified variant of frag_ab.
  TableBuilder f3(dict, "frag_ab_nulls");
  f3.Columns({"k", "a", "b"});
  for (const auto& row : data) {
    f3.Row({row[0], rng.Bernoulli(0.5) ? "" : row[1],
            rng.Bernoulli(0.5) ? "" : row[2]});
  }
  out.tables.push_back(f3.Build());
  // An erroneous variant: every non-key value is wrong.
  TableBuilder f4(dict, "frag_ab_errors");
  f4.Columns({"k", "a", "b"});
  for (const auto& row : data) {
    f4.Row({row[0], "WRONG_" + row[1], "WRONG_" + row[2]});
  }
  out.erroneous_index = out.tables.size();
  out.tables.push_back(f4.Build());
  return out;
}

class TraversalSweep : public ::testing::TestWithParam<int> {};

TEST_P(TraversalSweep, SelectionIsSubsetWithoutDuplicates) {
  TraversalCase c = MakeCase(GetParam() * 7919 + 2);
  auto result = MatrixTraversal(*c.source, c.tables);
  ASSERT_TRUE(result.ok());
  std::vector<bool> seen(c.tables.size(), false);
  for (size_t idx : result->selected) {
    ASSERT_LT(idx, c.tables.size());
    EXPECT_FALSE(seen[idx]) << "table selected twice";
    seen[idx] = true;
  }
}

TEST_P(TraversalSweep, ScoreIsInRangeAndPositiveWhenCoverageExists) {
  TraversalCase c = MakeCase(GetParam() * 271 + 19);
  auto result = MatrixTraversal(*c.source, c.tables);
  ASSERT_TRUE(result.ok());
  EXPECT_GE(result->final_score, 0.0);
  EXPECT_LE(result->final_score, 1.0 + 1e-9);
  // Clean fragments cover the whole source: simulated EIS must be
  // (near-)perfect.
  EXPECT_GT(result->final_score, 0.95) << "clean coverage not found";
}

TEST_P(TraversalSweep, ErroneousTableIsNeverSelected) {
  // The all-wrong variant can only lower EIS; Algorithm 1 must skip it.
  TraversalCase c = MakeCase(GetParam() * 65537 + 23);
  auto result = MatrixTraversal(*c.source, c.tables);
  ASSERT_TRUE(result.ok());
  for (size_t idx : result->selected) {
    EXPECT_NE(idx, c.erroneous_index)
        << "traversal selected the erroneous variant";
  }
}

TEST_P(TraversalSweep, MoreTablesNeverLowerFinalScore) {
  // Adding candidates can only keep or improve the best simulated EIS
  // (the traversal is free to ignore new tables).
  TraversalCase c = MakeCase(GetParam() * 389 + 31);
  std::vector<Table> fewer;
  fewer.push_back(c.tables[0].Clone());
  auto small = MatrixTraversal(*c.source, fewer);
  auto full = MatrixTraversal(*c.source, c.tables);
  ASSERT_TRUE(small.ok());
  ASSERT_TRUE(full.ok());
  EXPECT_GE(full->final_score + 1e-9, small->final_score);
}

TEST_P(TraversalSweep, ThreeValuedNeverTrailsBinaryOnNoisyInput) {
  // The 3-valued encoding sees erroneous values the binary one cannot
  // (paper §V-A3); its selection must score at least as well when fed
  // tables with contradictions.
  TraversalCase c = MakeCase(GetParam() * 127 + 43);
  TraversalOptions three, two;
  three.matrix.three_valued = true;
  two.matrix.three_valued = false;
  auto r3 = MatrixTraversal(*c.source, c.tables, three);
  auto r2 = MatrixTraversal(*c.source, c.tables, two);
  ASSERT_TRUE(r3.ok());
  ASSERT_TRUE(r2.ok());
  // Compare by what the 3-valued scorer thinks of both selections: the
  // binary traversal may pick contradiction-laden tables.
  bool binary_selected_erroneous = false;
  for (size_t idx : r2->selected) {
    binary_selected_erroneous |= idx == c.erroneous_index;
  }
  for (size_t idx : r3->selected) {
    EXPECT_NE(idx, c.erroneous_index);
  }
  (void)binary_selected_erroneous;  // shape varies; key invariant above
}

TEST_P(TraversalSweep, EmptyAndSingletonInputs) {
  TraversalCase c = MakeCase(GetParam() * 3 + 77);
  auto empty = MatrixTraversal(*c.source, {});
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->selected.empty());
  std::vector<Table> one;
  one.push_back(c.tables[0].Clone());
  auto single = MatrixTraversal(*c.source, one);
  ASSERT_TRUE(single.ok());
  ASSERT_LE(single->selected.size(), 1u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TraversalSweep, ::testing::Range(1, 13));

}  // namespace
}  // namespace gent
