// Tests for fuzzy value similarity and the lake-value rewrite
// (src/semantic).

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/semantic/fuzzy.h"
#include "src/semantic/value_map.h"
#include "src/table/table_builder.h"
#include "src/util/random.h"

namespace gent {
namespace {

TEST(CanonicalizeValueTest, LowercasesTrimsAndDropsPunct) {
  EXPECT_EQ(CanonicalizeValue("  New   York.  "), "new york");
  EXPECT_EQ(CanonicalizeValue("O'Brien"), "obrien");
  EXPECT_EQ(CanonicalizeValue("inter-national"), "international");
  EXPECT_EQ(CanonicalizeValue("A_B"), "ab");
}

TEST(CanonicalizeValueTest, NormalizesNumbers) {
  EXPECT_EQ(CanonicalizeValue("3.10"), CanonicalizeValue("3.1"));
  EXPECT_EQ(CanonicalizeValue(" 007 "), CanonicalizeValue("7"));
}

TEST(CanonicalizeValueTest, EmptyAndWhitespaceOnly) {
  EXPECT_EQ(CanonicalizeValue(""), "");
  EXPECT_EQ(CanonicalizeValue("   "), "");
  EXPECT_EQ(CanonicalizeValue("..."), "");
}

TEST(TrigramsTest, PaddedTrigramsOfShortStrings) {
  // "ab" padded to \1\1ab\1\1 -> 4 distinct trigrams.
  EXPECT_EQ(Trigrams("ab").size(), 4u);
  EXPECT_TRUE(Trigrams("").empty() || Trigrams("").size() <= 2u);
}

TEST(TrigramJaccardTest, IdenticalIsOneDisjointIsZero) {
  EXPECT_DOUBLE_EQ(TrigramJaccard("boston", "boston"), 1.0);
  EXPECT_DOUBLE_EQ(TrigramJaccard("", ""), 1.0);
  EXPECT_EQ(TrigramJaccard("abc", "xyz"), 0.0);
}

TEST(TrigramJaccardTest, SimilarStringsScoreBetween) {
  const double s = TrigramJaccard("boston", "bostan");
  EXPECT_GT(s, 0.2);
  EXPECT_LT(s, 1.0);
}

TEST(BoundedEditDistanceTest, ExactSmallCases) {
  EXPECT_EQ(BoundedEditDistance("kitten", "sitting", 5), 3u);
  EXPECT_EQ(BoundedEditDistance("abc", "abc", 2), 0u);
  EXPECT_EQ(BoundedEditDistance("", "abc", 5), 3u);
  EXPECT_EQ(BoundedEditDistance("abc", "", 5), 3u);
  EXPECT_EQ(BoundedEditDistance("a", "b", 3), 1u);
}

TEST(BoundedEditDistanceTest, BoundCapsResult) {
  // True distance 3; bound 1 must report >1 ("more than the bound").
  EXPECT_GT(BoundedEditDistance("kitten", "sitting", 1), 1u);
  // Length difference alone exceeds the bound.
  EXPECT_GT(BoundedEditDistance("ab", "abcdefgh", 2), 2u);
}

TEST(BoundedEditDistanceTest, AgreesWithUnboundedWhenGenerous) {
  Rng rng(99);
  for (int i = 0; i < 200; ++i) {
    std::string a = rng.AlphaNum(rng.Index(8));
    std::string b = rng.AlphaNum(rng.Index(8));
    // Reference: full DP.
    std::vector<std::vector<size_t>> dp(a.size() + 1,
                                        std::vector<size_t>(b.size() + 1));
    for (size_t x = 0; x <= a.size(); ++x) dp[x][0] = x;
    for (size_t y = 0; y <= b.size(); ++y) dp[0][y] = y;
    for (size_t x = 1; x <= a.size(); ++x) {
      for (size_t y = 1; y <= b.size(); ++y) {
        dp[x][y] = std::min({dp[x - 1][y] + 1, dp[x][y - 1] + 1,
                             dp[x - 1][y - 1] + (a[x - 1] == b[y - 1] ? 0u : 1u)});
      }
    }
    EXPECT_EQ(BoundedEditDistance(a, b, 16), dp[a.size()][b.size()])
        << a << " vs " << b;
  }
}

TEST(FuzzySimilarityTest, CanonicalEqualityIsExactlyOne) {
  EXPECT_DOUBLE_EQ(FuzzySimilarity("New York", "new  york."), 1.0);
  EXPECT_DOUBLE_EQ(FuzzySimilarity("abc", "abc"), 1.0);
}

TEST(FuzzySimilarityTest, UnequalStringsScoreBelowOne) {
  EXPECT_LT(FuzzySimilarity("boston", "bostan"), 1.0);
  EXPECT_GT(FuzzySimilarity("boston", "bostan"), 0.6);
  EXPECT_LT(FuzzySimilarity("boston", "chicago"), 0.3);
}

TEST(FuzzySimilarityTest, EmptyNeverMatchesNonEmpty) {
  EXPECT_DOUBLE_EQ(FuzzySimilarity("", "abc"), 0.0);
  EXPECT_DOUBLE_EQ(FuzzySimilarity("...", "abc"), 0.0);
}

// --- FuzzyValueMap ---------------------------------------------------------

Table CitySource(const DictionaryPtr& dict) {
  return TableBuilder(dict, "source")
      .Columns({"city", "state"})
      .Row({"boston", "massachusetts"})
      .Row({"worcester", "massachusetts"})
      .Row({"new york", "new york"})
      .Build();
}

TEST(FuzzyValueMapTest, RewritesTyposOntoSourceValues) {
  auto dict = MakeDictionary();
  Table source = CitySource(dict);
  FuzzyValueMap map = FuzzyValueMap::Build(source);
  Table lake = TableBuilder(dict, "lake")
                   .Columns({"city", "pop"})
                   .Row({"Boston", "650000"})       // typo
                   .Row({"New York.", "8000000"})   // punctuation
                   .Row({"chicago", "2700000"})     // genuinely absent
                   .Build();
  ValueMapStats stats;
  Table rewritten = map.Apply(lake, &stats);
  EXPECT_EQ(rewritten.CellString(0, 0), "boston");
  EXPECT_EQ(rewritten.CellString(1, 0), "new york");
  EXPECT_EQ(rewritten.CellString(2, 0), "chicago") << "no near match: kept";
  EXPECT_EQ(stats.cells_rewritten, 2u);
  EXPECT_EQ(stats.distinct_values_rewritten, 2u);
}

TEST(FuzzyValueMapTest, SourceValuesMapToThemselves) {
  auto dict = MakeDictionary();
  Table source = CitySource(dict);
  FuzzyValueMap map = FuzzyValueMap::Build(source);
  const ValueId boston = dict->Lookup("boston");
  ASSERT_NE(boston, kNull);
  EXPECT_EQ(map.MapValue(boston), boston);
  EXPECT_EQ(map.MapValue(kNull), kNull);
}

TEST(FuzzyValueMapTest, AmbiguousValuesAreLeftAlone) {
  auto dict = MakeDictionary();
  // Two source values a lake typo is equidistant from.
  Table source = TableBuilder(dict, "s")
                     .Columns({"name"})
                     .Row({"lena"})
                     .Row({"lina"})
                     .Build();
  ValueMapOptions options;
  options.min_similarity = 0.4;  // admit the typo so ambiguity decides
  FuzzyValueMap map = FuzzyValueMap::Build(source, options);
  Table lake = TableBuilder(dict, "lake")
                   .Columns({"name"})
                   .Row({"lsna"})  // 1 edit from both
                   .Build();
  ValueMapStats stats;
  Table rewritten = map.Apply(lake, &stats);
  EXPECT_EQ(rewritten.CellString(0, 0), "lsna");
  EXPECT_EQ(stats.ambiguous_values_skipped, 1u);
}

TEST(FuzzyValueMapTest, ThresholdGovernsAggressiveness) {
  auto dict = MakeDictionary();
  Table source = CitySource(dict);
  Table lake = TableBuilder(dict, "lake")
                   .Columns({"city"})
                   .Row({"bstn"})  // heavy typo: sim well below default
                   .Build();
  FuzzyValueMap strict = FuzzyValueMap::Build(source);
  EXPECT_EQ(strict.Apply(lake).CellString(0, 0), "bstn");
  ValueMapOptions loose;
  loose.min_similarity = 0.2;
  FuzzyValueMap relaxed = FuzzyValueMap::Build(source, loose);
  EXPECT_EQ(relaxed.Apply(lake).CellString(0, 0), "boston");
}

TEST(FuzzyValueMapTest, LabeledNullsNeverRewritten) {
  auto dict = MakeDictionary();
  Table source = CitySource(dict);
  FuzzyValueMap map = FuzzyValueMap::Build(source);
  const ValueId label = dict->CreateLabeledNull();
  EXPECT_EQ(map.MapValue(label), label);
}

TEST(FuzzyValueMapTest, ApplyAllRewritesEveryTable) {
  auto dict = MakeDictionary();
  Table source = CitySource(dict);
  FuzzyValueMap map = FuzzyValueMap::Build(source);
  std::vector<Table> lake;
  lake.push_back(TableBuilder(dict, "l1").Columns({"city"}).Row({"Boston"}).Build());
  lake.push_back(TableBuilder(dict, "l2").Columns({"city"}).Row({"worcestor"}).Build());
  ValueMapStats stats;
  std::vector<Table> rewritten = map.ApplyAll(lake, &stats);
  ASSERT_EQ(rewritten.size(), 2u);
  EXPECT_EQ(rewritten[0].CellString(0, 0), "boston");
  EXPECT_EQ(rewritten[1].CellString(0, 0), "worcester");
  EXPECT_EQ(stats.cells_rewritten, 2u);
}

// Property sweep: single-character corruptions of source values must map
// back to the original for reasonably long values.
class FuzzyRepairSweep : public ::testing::TestWithParam<int> {};

TEST_P(FuzzyRepairSweep, SingleEditRepairs) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 31337 + 5);
  auto dict = MakeDictionary();
  // Distinct, well-separated source values.
  std::vector<std::string> values;
  TableBuilder builder(dict, "s");
  builder.Columns({"v"});
  for (int i = 0; i < 12; ++i) {
    values.push_back("entity" + std::to_string(i * i + 100) +
                     rng.AlphaNum(6));
    builder.Row({values.back()});
  }
  Table source = builder.Build();
  FuzzyValueMap map = FuzzyValueMap::Build(source);
  // Corrupt one character of one value.
  const std::string& victim = values[rng.Index(values.size())];
  std::string corrupted = victim;
  const size_t pos = rng.Index(corrupted.size());
  corrupted[pos] = corrupted[pos] == 'q' ? 'z' : 'q';
  Table lake =
      TableBuilder(dict, "lake").Columns({"v"}).Row({corrupted}).Build();
  Table rewritten = map.Apply(lake);
  EXPECT_EQ(rewritten.CellString(0, 0), victim)
      << "corrupted '" << corrupted << "' did not map back";
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzyRepairSweep, ::testing::Range(1, 17));

}  // namespace
}  // namespace gent
