// Robustness and failure-injection tests: hostile inputs through the
// whole pipeline — degenerate shapes, adversarial values, duplicate
// tables, exhausted budgets. The contract under attack is always the
// same: never crash, fail with a typed Status when refusing, and degrade
// monotonically (never fabricate values) when proceeding.

#include <cerrno>
#include <filesystem>
#include <string>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

#include <gtest/gtest.h>

#include "src/engine/reclaim_service.h"
#include "src/storage/io.h"
#include "src/gent/gent.h"
#include "src/metrics/precision_recall.h"
#include "src/metrics/similarity.h"
#include "src/ops/fusion.h"
#include "src/ops/union.h"
#include "src/table/table_builder.h"
#include "src/table/table_io.h"
#include "src/util/random.h"

namespace gent {
namespace {

TEST(RobustnessTest, SingleCellSource) {
  DataLake lake;
  const DictionaryPtr& dict = lake.dict();
  Table source = TableBuilder(dict, "s")
                     .Columns({"k"})
                     .Row({"only"})
                     .Key({"k"})
                     .Build();
  (void)lake.AddTable(
      TableBuilder(dict, "t").Columns({"k"}).Row({"only"}).Build());
  GenT gent(lake);
  auto result = gent.Reclaim(source);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_DOUBLE_EQ(EisScore(source, result->reclaimed).value(), 1.0);
}

TEST(RobustnessTest, AllNullNonKeySource) {
  DataLake lake;
  const DictionaryPtr& dict = lake.dict();
  Table source = TableBuilder(dict, "s")
                     .Columns({"k", "a", "b"})
                     .Row({"1", "", ""})
                     .Row({"2", "", ""})
                     .Key({"k"})
                     .Build();
  (void)lake.AddTable(TableBuilder(dict, "t")
                          .Columns({"k", "a"})
                          .Row({"1", "poison"})
                          .Row({"2", "poison"})
                          .Build());
  GenT gent(lake);
  auto result = gent.Reclaim(source);
  ASSERT_TRUE(result.ok());
  // The ideal reclamation of an all-null source leaves the nulls alone;
  // EIS of an empty reclamation is 0.5 (all nulls match nothing but
  // contradict nothing). Anything above means values were fabricated.
  const double eis = EisScore(source, result->reclaimed).value();
  EXPECT_GE(eis, 0.5 - 1e-9) << result->reclaimed.ToString();
}

TEST(RobustnessTest, AdversarialStringsSurviveThePipeline) {
  DataLake lake;
  const DictionaryPtr& dict = lake.dict();
  const std::vector<std::string> nasty = {
      "comma,inside", "quote\"inside", "  leading", "trailing  ",
      "line\nbreak",  "tab\tchar",     "日本語",     "emoji🙂",
      "⊥",            "⟨null:0⟩"};  // even our own sentinels' spellings
  TableBuilder sb(dict, "s");
  sb.Columns({"k", "v"});
  for (size_t i = 0; i < nasty.size(); ++i) {
    sb.Row({std::to_string(i), nasty[i]});
  }
  Table source = sb.Key({"k"}).Build();
  TableBuilder tb(dict, "t");
  tb.Columns({"k", "v"});
  for (size_t i = 0; i < nasty.size(); ++i) {
    tb.Row({std::to_string(i), nasty[i]});
  }
  (void)lake.AddTable(tb.Build());
  GenT gent(lake);
  auto result = gent.Reclaim(source);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_DOUBLE_EQ(EisScore(source, result->reclaimed).value(), 1.0)
      << result->reclaimed.ToString();
}

TEST(RobustnessTest, NumericSpellingsUnifyAcrossLakeAndSource) {
  DataLake lake;
  const DictionaryPtr& dict = lake.dict();
  Table source = TableBuilder(dict, "s")
                     .Columns({"k", "x"})
                     .Row({"1", "3.1"})
                     .Row({"2", "100"})
                     .Key({"k"})
                     .Build();
  (void)lake.AddTable(TableBuilder(dict, "t")
                          .Columns({"k", "x"})
                          .Row({"1", "3.10"})
                          .Row({"2", "1e2"})
                          .Build());
  GenT gent(lake);
  auto result = gent.Reclaim(source);
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(EisScore(source, result->reclaimed).value(), 1.0);
}

TEST(RobustnessTest, ExactDuplicateTablesDoNotDoubleOriginating) {
  // Paper Example 9: a duplicate of a candidate adds no information and
  // must not both enter the originating set.
  DataLake lake;
  const DictionaryPtr& dict = lake.dict();
  Table source = TableBuilder(dict, "s")
                     .Columns({"k", "a", "b"})
                     .Row({"1", "x", "p"})
                     .Row({"2", "y", "q"})
                     .Key({"k"})
                     .Build();
  auto make = [&](const std::string& name) {
    return TableBuilder(dict, name)
        .Columns({"k", "a", "b"})
        .Row({"1", "x", "p"})
        .Row({"2", "y", "q"})
        .Build();
  };
  (void)lake.AddTable(make("original"));
  (void)lake.AddTable(make("duplicate"));
  GenT gent(lake);
  auto result = gent.Reclaim(source);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->originating_names.size(), 1u)
      << "duplicate should be pruned (subsumed candidate removal)";
  EXPECT_DOUBLE_EQ(EisScore(source, result->reclaimed).value(), 1.0);
}

TEST(RobustnessTest, NullKeysInLakeTuplesNeverAlign) {
  DataLake lake;
  const DictionaryPtr& dict = lake.dict();
  Table source = TableBuilder(dict, "s")
                     .Columns({"k", "a"})
                     .Row({"1", "x"})
                     .Key({"k"})
                     .Build();
  (void)lake.AddTable(TableBuilder(dict, "t")
                          .Columns({"k", "a"})
                          .Row({"", "wrong"})  // null key must not align
                          .Row({"1", "x"})
                          .Build());
  GenT gent(lake);
  auto result = gent.Reclaim(source);
  ASSERT_TRUE(result.ok());
  auto pr = ComputePrecisionRecall(source, result->reclaimed);
  EXPECT_DOUBLE_EQ(pr.recall, 1.0);
  // The null-keyed garbage tuple must not contribute a "wrong" value to
  // the aligned tuple for key 1.
  EXPECT_DOUBLE_EQ(EisScore(source, result->reclaimed).value(), 1.0);
}

TEST(RobustnessTest, SourceWithDuplicateKeyValuesIsRejected) {
  DataLake lake;
  const DictionaryPtr& dict = lake.dict();
  // A "key" that does not identify rows breaks the alignment contract;
  // Reclaim must refuse or behave sanely (never crash). We accept either
  // an error status or a well-formed table.
  Table source = TableBuilder(dict, "s")
                     .Columns({"k", "a"})
                     .Row({"1", "x"})
                     .Row({"1", "y"})
                     .Key({"k"})
                     .Build();
  (void)lake.AddTable(TableBuilder(dict, "t")
                          .Columns({"k", "a"})
                          .Row({"1", "x"})
                          .Build());
  GenT gent(lake);
  auto result = gent.Reclaim(source);
  if (result.ok()) {
    EXPECT_EQ(result->reclaimed.num_cols(), source.num_cols());
  }
}

TEST(RobustnessTest, TightRowBudgetSurfacesTypedError) {
  DataLake lake;
  const DictionaryPtr& dict = lake.dict();
  TableBuilder sb(dict, "s");
  sb.Columns({"k", "a", "b", "c"});
  Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    sb.Row({std::to_string(i), rng.AlphaNum(4), rng.AlphaNum(4),
            rng.AlphaNum(4)});
  }
  Table source = sb.Key({"k"}).Build();
  // Three fragment tables that all must be unioned.
  for (const char* cols : {"a", "b", "c"}) {
    TableBuilder tb(dict, std::string("frag_") + cols);
    tb.Columns({"k", cols});
    for (int i = 0; i < 200; ++i) {
      auto col = source.ColumnIndex(cols);
      tb.Row({std::to_string(i), source.CellString(i, *col)});
    }
    (void)lake.AddTable(tb.Build());
  }
  GenT gent(lake);
  OpLimits limits;
  limits.MaxRows(10);  // absurdly small: must trip OutOfRange somewhere
  auto result = gent.Reclaim(source, limits);
  if (!result.ok()) {
    EXPECT_TRUE(result.status().code() == StatusCode::kOutOfRange ||
                result.status().code() == StatusCode::kTimeout)
        << result.status().ToString();
  }
}

TEST(RobustnessTest, ZeroSecondTimeoutNeverHangs) {
  DataLake lake;
  const DictionaryPtr& dict = lake.dict();
  Table source = TableBuilder(dict, "s")
                     .Columns({"k", "a"})
                     .Row({"1", "x"})
                     .Key({"k"})
                     .Build();
  (void)lake.AddTable(
      TableBuilder(dict, "t").Columns({"k", "a"}).Row({"1", "x"}).Build());
  GenT gent(lake);
  auto result = gent.Reclaim(source, OpLimits::WithTimeout(0.0));
  // Either it finished before the first deadline check or it reports
  // Timeout; both are acceptable, hanging/crashing is not.
  if (!result.ok()) {
    EXPECT_EQ(result.status().code(), StatusCode::kTimeout);
  }
}

TEST(RobustnessTest, WidePaperScaleSource) {
  // Paper §I: sources up to 22 columns; exercise that width end-to-end.
  DataLake lake;
  const DictionaryPtr& dict = lake.dict();
  const size_t kCols = 22;
  std::vector<std::string> names = {"k"};
  for (size_t c = 1; c < kCols; ++c) names.push_back("c" + std::to_string(c));
  Rng rng(11);
  TableBuilder sb(dict, "wide");
  sb.Columns(names);
  std::vector<std::vector<std::string>> rows;
  for (int r = 0; r < 40; ++r) {
    std::vector<std::string> row = {std::to_string(r)};
    for (size_t c = 1; c < kCols; ++c) row.push_back(rng.AlphaNum(5));
    rows.push_back(row);
    sb.Row(row);
  }
  Table source = sb.Key({"k"}).Build();
  // Two overlapping vertical fragments.
  auto fragment = [&](const std::string& name, size_t lo, size_t hi) {
    std::vector<std::string> cols = {"k"};
    for (size_t c = lo; c < hi; ++c) cols.push_back(names[c]);
    TableBuilder tb(dict, name);
    tb.Columns(cols);
    for (const auto& row : rows) {
      std::vector<std::string> cells = {row[0]};
      for (size_t c = lo; c < hi; ++c) cells.push_back(row[c]);
      tb.Row(cells);
    }
    return tb.Build();
  };
  (void)lake.AddTable(fragment("left", 1, 12));
  (void)lake.AddTable(fragment("right", 12, kCols));
  GenT gent(lake);
  auto result = gent.Reclaim(source);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_DOUBLE_EQ(EisScore(source, result->reclaimed).value(), 1.0);
  EXPECT_EQ(result->originating_names.size(), 2u);
}

TEST(RobustnessTest, OuterUnionWithEmptyTables) {
  auto dict = MakeDictionary();
  Table empty = TableBuilder(dict, "e").Columns({"a", "b"}).Build();
  Table full =
      TableBuilder(dict, "f").Columns({"b", "c"}).Row({"1", "2"}).Build();
  Table u1 = OuterUnion(empty, full);
  EXPECT_EQ(u1.num_rows(), 1u);
  EXPECT_EQ(u1.num_cols(), 3u);
  Table u2 = OuterUnion(full, empty);
  EXPECT_EQ(u2.num_rows(), 1u);
  Table u3 = OuterUnion(empty, empty);
  EXPECT_EQ(u3.num_rows(), 0u);
}

TEST(RobustnessTest, MinimalFormOfPathologicallyNullTable) {
  auto dict = MakeDictionary();
  TableBuilder tb(dict, "nulls");
  tb.Columns({"a", "b", "c"});
  for (int i = 0; i < 50; ++i) tb.Row({"", "", ""});
  tb.Row({"1", "", ""});
  auto minimal = TakeMinimalForm(tb.Build());
  ASSERT_TRUE(minimal.ok());
  // All-null tuples are subsumed by the single non-null tuple.
  EXPECT_EQ(minimal->num_rows(), 1u);
}

// CSV fuzz: random tables with adversarial cell content must survive a
// serialize→parse round trip bit-exactly (after dictionary-level numeric
// canonicalization, which Intern applies on both paths).
class CsvFuzzSweep : public ::testing::TestWithParam<int> {};

TEST_P(CsvFuzzSweep, RoundTripIsExact) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 6364136223846793005ULL + 9);
  auto dict = MakeDictionary();
  const size_t cols = 1 + rng.Index(6);
  const size_t rows = rng.Index(30);
  std::vector<std::string> names;
  for (size_t c = 0; c < cols; ++c) names.push_back("c" + std::to_string(c));
  TableBuilder builder(dict, "fuzz");
  builder.Columns(names);
  const std::string alphabet = ",\"\n\r 'ab\t;|√東";
  for (size_t r = 0; r < rows; ++r) {
    std::vector<std::string> row;
    for (size_t c = 0; c < cols; ++c) {
      switch (rng.Index(4)) {
        case 0:
          row.push_back("");  // null
          break;
        case 1:
          row.push_back(std::to_string(rng.Index(1000)));
          break;
        case 2:
          row.push_back(rng.AlphaNum(1 + rng.Index(10)));
          break;
        default: {
          // Adversarial: random bytes from the nasty alphabet.
          std::string s;
          const size_t len = 1 + rng.Index(8);
          for (size_t i = 0; i < len; ++i) {
            s += alphabet[rng.Index(alphabet.size())];
          }
          // A cell of pure whitespace parses back as that string only if
          // quoting preserves it; our CSV quotes anything with
          // specials, so this is fair game.
          row.push_back(s);
          break;
        }
      }
    }
    builder.Row(row);
  }
  Table original = builder.Build();

  const std::string path =
      (std::string("/tmp/gent_csv_fuzz_") + std::to_string(GetParam())) +
      ".csv";
  ASSERT_TRUE(WriteCsv(original, path).ok());
  auto reparsed = ReadCsv(dict, "fuzz", path);
  std::remove(path.c_str());
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
  ASSERT_EQ(reparsed->num_rows(), original.num_rows());
  ASSERT_EQ(reparsed->column_names(), original.column_names());
  for (size_t r = 0; r < original.num_rows(); ++r) {
    for (size_t c = 0; c < original.num_cols(); ++c) {
      EXPECT_EQ(reparsed->cell(r, c), original.cell(r, c))
          << "cell (" << r << "," << c << "): '"
          << original.CellString(r, c) << "' vs '"
          << reparsed->CellString(r, c) << "'";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CsvFuzzSweep, ::testing::Range(1, 25));

TEST(RobustnessTest, SaveShardSnapshotUnknownShardIsTyped) {
  ReclaimService service{ServiceOptions{}};
  EXPECT_EQ(service.SaveShardSnapshot("nope", "/tmp/never_written").code(),
            StatusCode::kNotFound);
}

TEST(RobustnessTest, FailedShardSnapshotSaveLeavesServiceServing) {
  // Injected ENOSPC mid-save must surface as a typed error and leave
  // the registry serving exactly what it served before — and the
  // crash-atomic commit must leave neither a destination file nor a
  // stranded temp behind.
  DictionaryPtr dict = MakeDictionary();
  DataLake lake(dict);
  (void)lake.AddTable(TableBuilder(dict, "t")
                          .Columns({"k", "a"})
                          .Row({"1", "x"})
                          .Row({"2", "y"})
                          .Build());
  Table source = TableBuilder(dict, "s")
                     .Columns({"k", "a"})
                     .Row({"1", "x"})
                     .Row({"2", ""})
                     .Key({"k"})
                     .Build();
  ServiceOptions options;
  options.dict = dict;
  ReclaimService service(std::move(options));
  ASSERT_TRUE(service.AddLake("lake", std::move(lake)).ok());

  ReclaimRequest request;
  request.lake = "lake";
  request.bypass_cache = true;
  auto before = service.Reclaim(source, request);
  ASSERT_TRUE(before.ok());

  const std::string path =
      (std::filesystem::temp_directory_path() /
       ("gent_robust_enospc_" + std::to_string(::getpid()) + ".snap"))
          .string();
  {
    io::FaultInjector injector;
    io::FaultPlan plan;
    plan.op_mask = io::OpBit(io::Op::kWrite);
    plan.trigger_at = 3;  // fail mid-stream, not at open
    plan.kind = io::FaultKind::kErrno;
    plan.error_code = ENOSPC;
    injector.Arm(plan);
    io::ScopedFaultInjector scope(&injector);
    Status s = service.SaveShardSnapshot("lake", path);
    EXPECT_EQ(s.code(), StatusCode::kIOError);
  }
  EXPECT_FALSE(std::filesystem::exists(path));
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp." +
                                       std::to_string(::getpid())));

  auto after = service.Reclaim(source, request);
  ASSERT_TRUE(after.ok());
  EXPECT_TRUE(TablesBitIdentical(before->reclaimed, after->reclaimed));
  EXPECT_EQ(before->originating_names, after->originating_names);
}

TEST(RobustnessTest, AddColumnNameCollisionFails) {
  auto dict = MakeDictionary();
  Table t(std::string("t"), dict);
  ASSERT_TRUE(t.AddColumn("a").ok());
  EXPECT_FALSE(t.AddColumn("a").ok());
  ASSERT_TRUE(t.AddColumn("b").ok());
  EXPECT_FALSE(t.RenameColumn(1, "a").ok());
}

}  // namespace
}  // namespace gent
