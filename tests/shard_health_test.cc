// Shard health and self-healing (DESIGN.md §5.11): a mapped shard that
// hits a storage fault is quarantined — fan-out answers bit-identically
// from the remaining shards, named requests get Unavailable — while
// background recovery reopens it with exponential backoff, falling back
// to a body-salvage rebuild when the snapshot's catalog tail stays
// damaged. The hammer test runs fan-out traffic concurrently with
// quarantine/heal cycles and is a TSan target.

#include <atomic>
#include <cerrno>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

#include <gtest/gtest.h>

#include "src/engine/reclaim_service.h"
#include "src/gent/gent.h"
#include "src/lake/snapshot.h"
#include "src/storage/io.h"
#include "src/table/table_builder.h"

namespace gent {
namespace {

class ShardHealthTest : public ::testing::Test {
 protected:
  ShardHealthTest() {
    dir_ = std::filesystem::temp_directory_path() /
           ("gent_health_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::create_directories(dir_);
  }
  ~ShardHealthTest() override {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }

  std::string Path(const std::string& name) const {
    return (dir_ / name).string();
  }

  // One source split across the two shards: alpha holds the (k, a)
  // fragment, beta the (k, b) fragment, so a fan-out needs BOTH shards
  // for the full reclamation and the beta-only answer is a distinct,
  // still-valid result. Noise keeps each catalog non-trivial.
  void BuildFixture() {
    TableBuilder sb(dict_, "source0");
    sb.Columns({"k", "a", "b"});
    TableBuilder fa(dict_, "frag_a");
    fa.Columns({"k", "a"});
    TableBuilder fb(dict_, "frag_b");
    fb.Columns({"k", "b"});
    for (size_t r = 0; r < 12; ++r) {
      const std::string k = "k" + std::to_string(r);
      const std::string a = "a" + std::to_string(r % 5);
      const std::string b = "b" + std::to_string(r);
      sb.Row({k, a, b});
      fa.Row({k, a});
      fb.Row({k, b});
    }
    source_ = sb.Key({"k"}).Build();

    alpha_ = std::make_unique<DataLake>(dict_);
    ASSERT_TRUE(alpha_->AddTable(fa.Build()).ok());
    beta_ = std::make_unique<DataLake>(dict_);
    ASSERT_TRUE(beta_->AddTable(fb.Build()).ok());
    for (auto* lake : {alpha_.get(), beta_.get()}) {
      TableBuilder noise(dict_, lake == alpha_.get() ? "noise_a" : "noise_b");
      noise.Columns({"x", "y"});
      for (size_t r = 0; r < 40; ++r) {
        noise.Row({"nx" + std::to_string(r), "ny" + std::to_string(r)});
      }
      ASSERT_TRUE(lake->AddTable(noise.Build()).ok());
    }

    alpha_path_ = Path("alpha.snap");
    beta_path_ = Path("beta.snap");
    {
      GenT g(*alpha_);
      ASSERT_TRUE(
          SaveSnapshotV2(*alpha_, g.catalog().section_views(), alpha_path_)
              .ok());
    }
    {
      GenT g(*beta_);
      ASSERT_TRUE(
          SaveSnapshotV2(*beta_, g.catalog().section_views(), beta_path_)
              .ok());
    }
  }

  std::unique_ptr<ReclaimService> MakeService(const ShardHealthOptions& health,
                                              bool with_alpha = true) {
    ServiceOptions options;
    options.dict = dict_;
    options.num_threads = 1;
    options.cache_capacity = 0;
    options.health = health;
    auto service = std::make_unique<ReclaimService>(std::move(options));
    if (with_alpha) {
      EXPECT_TRUE(service->AddLakeFromSnapshot("alpha", alpha_path_).ok());
    }
    EXPECT_TRUE(service->AddLakeFromSnapshot("beta", beta_path_).ok());
    return service;
  }

  // Reference answers from pristine services: the full two-shard
  // reclamation and the beta-only one (what a fan-out must serve while
  // alpha is quarantined).
  void BuildReferences() {
    ReclaimRequest fan;
    fan.policy = RoutingPolicy::kFanOutAll;
    auto full = MakeService(ShardHealthOptions{})->Reclaim(source_, fan);
    ASSERT_TRUE(full.ok()) << full.status().ToString();
    ref_full_.emplace(std::move(*full));
    auto beta_only =
        MakeService(ShardHealthOptions{}, /*with_alpha=*/false)
            ->Reclaim(source_, fan);
    ASSERT_TRUE(beta_only.ok()) << beta_only.status().ToString();
    ref_beta_.emplace(std::move(*beta_only));
    // The two references must differ, or the routing assertions below
    // would be vacuous.
    ASSERT_FALSE(Same(*ref_full_, *ref_beta_));
  }

  static bool Same(const ReclamationResult& a, const ReclamationResult& b) {
    return TablesBitIdentical(a.reclaimed, b.reclaimed) &&
           a.originating_names == b.originating_names;
  }

  static ReclaimService::ShardHealthStats HealthOf(
      const ReclaimService& service, const std::string& name) {
    for (const auto& h : service.health_stats()) {
      if (h.name == name) return h;
    }
    ADD_FAILURE() << "no health entry for shard '" << name << "'";
    return {};
  }

  template <typename Pred>
  static bool WaitFor(Pred pred, double seconds = 8.0) {
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::duration<double>(seconds);
    while (std::chrono::steady_clock::now() < deadline) {
      if (pred()) return true;
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    return pred();
  }

  /// XORs 8 bytes in the snapshot footer region. Section payloads are
  /// untouched, so an already-open mapped shard keeps serving correct
  /// bytes — but VerifySnapshotIntegrity and any reopen must fail until
  /// the same call flips them back.
  static void FlipFooterBytes(const std::string& path) {
    const auto size = std::filesystem::file_size(path);
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekg(static_cast<std::streamoff>(size - 12));
    char bytes[8];
    f.read(bytes, sizeof bytes);
    for (char& c : bytes) c = static_cast<char>(c ^ 0x5A);
    f.seekp(static_cast<std::streamoff>(size - 12));
    f.write(bytes, sizeof bytes);
  }

  /// Builds a service whose alpha shard took an injected mapped-read
  /// fault while pinning its spine at open: its sticky storage health
  /// is already bad; the first served request's post-serve sweep will
  /// quarantine it. Returns null if the mapped backend is unavailable.
  std::unique_ptr<ReclaimService> MakeServiceWithFaultedAlpha(
      const ShardHealthOptions& health) {
    io::FaultInjector injector;
    io::FaultPlan plan;
    plan.op_mask = io::OpBit(io::Op::kMapRead);
    plan.trigger_at = 1;  // first prefault probe = alpha's spine pin
    plan.kind = io::FaultKind::kErrno;
    plan.error_code = EIO;
    injector.Arm(plan);
    std::unique_ptr<ReclaimService> service;
    {
      io::ScopedFaultInjector scope(&injector);
      service = MakeService(health);
    }
    if (!service->residency_stats()[0].catalog.mapped) return nullptr;
    EXPECT_GT(service->residency_stats()[0].catalog.pool_read_faults, 0u);
    return service;
  }

  DictionaryPtr dict_ = MakeDictionary();
  std::unique_ptr<DataLake> alpha_;
  std::unique_ptr<DataLake> beta_;
  Table source_{"source0", nullptr};
  std::string alpha_path_;
  std::string beta_path_;
  std::optional<ReclamationResult> ref_full_;
  std::optional<ReclamationResult> ref_beta_;
  std::filesystem::path dir_;
};

TEST_F(ShardHealthTest, QuarantineRoutesAroundFaultedShard) {
  BuildFixture();
  BuildReferences();
  ShardHealthOptions health;
  health.auto_recover = false;  // freeze the quarantined state
  auto service = MakeServiceWithFaultedAlpha(health);
  if (!service) GTEST_SKIP() << "mmap unavailable";

  // Nothing served yet: the fault has not been observed by routing.
  EXPECT_EQ(HealthOf(*service, "alpha").state, ShardHealth::kHealthy);

  // The faulting request itself still serves the full, bit-identical
  // answer (the injected fault poisons health, not bytes) ...
  ReclaimRequest fan;
  fan.policy = RoutingPolicy::kFanOutAll;
  auto first = service->Reclaim(source_, fan);
  ASSERT_TRUE(first.ok());
  EXPECT_TRUE(Same(*first, *ref_full_));

  // ... and its post-serve sweep quarantines alpha.
  auto alpha = HealthOf(*service, "alpha");
  EXPECT_EQ(alpha.state, ShardHealth::kQuarantined);
  EXPECT_GE(alpha.error_count, 1u);
  EXPECT_FALSE(alpha.last_error.empty());
  EXPECT_EQ(alpha.next_retry_in_seconds, -1);  // auto_recover off
  EXPECT_EQ(HealthOf(*service, "beta").state, ShardHealth::kHealthy);

  // Named request to the quarantined shard: typed Unavailable.
  ReclaimRequest named;
  named.lake = "alpha";
  auto rejected = service->Reclaim(source_, named);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(service->routing_stats().unavailable_rejects, 1u);

  // Fan-out (and prefilter fan-out) route around alpha and serve the
  // beta-only reference bit-identically.
  auto partial = service->Reclaim(source_, fan);
  ASSERT_TRUE(partial.ok());
  EXPECT_TRUE(Same(*partial, *ref_beta_));
  ReclaimRequest prefilter;
  prefilter.policy = RoutingPolicy::kStatsPrefilter;
  auto pruned = service->Reclaim(source_, prefilter);
  ASSERT_TRUE(pruned.ok());
  EXPECT_TRUE(Same(*pruned, *ref_beta_));
  EXPECT_GE(service->routing_stats().shards_quarantine_skipped, 2u);

  // The healthy shard still answers by name.
  named.lake = "beta";
  EXPECT_TRUE(service->Reclaim(source_, named).ok());
}

TEST_F(ShardHealthTest, BackgroundRecoveryHealsWithNewUid) {
  BuildFixture();
  BuildReferences();
  ShardHealthOptions health;
  health.backoff_initial_seconds = 0.01;
  health.backoff_max_seconds = 0.05;
  auto service = MakeServiceWithFaultedAlpha(health);
  if (!service) GTEST_SKIP() << "mmap unavailable";

  ReclaimRequest fan;
  fan.policy = RoutingPolicy::kFanOutAll;
  ASSERT_TRUE(service->Reclaim(source_, fan).ok());  // triggers quarantine
  const uint64_t old_uid = HealthOf(*service, "alpha").uid;

  // The snapshot file is intact, so the first retry's full reopen
  // heals the shard: healthy, not salvaged, counted, re-keyed.
  ASSERT_TRUE(WaitFor([&] {
    const auto h = HealthOf(*service, "alpha");
    return h.state == ShardHealth::kHealthy && h.recoveries >= 1;
  })) << "shard did not heal in time";
  const auto healed = HealthOf(*service, "alpha");
  EXPECT_NE(healed.uid, old_uid) << "a healed shard must carry a new uid";
  EXPECT_FALSE(healed.rebuilt_from_body);
  EXPECT_EQ(healed.recovery_attempts, 0u);

  auto after = service->Reclaim(source_, fan);
  ASSERT_TRUE(after.ok());
  EXPECT_TRUE(Same(*after, *ref_full_));
  ReclaimRequest named;
  named.lake = "alpha";
  EXPECT_TRUE(service->Reclaim(source_, named).ok());
}

TEST_F(ShardHealthTest, DamagedCatalogTailSalvagesToDegraded) {
  BuildFixture();
  BuildReferences();
  ShardHealthOptions health;
  health.backoff_initial_seconds = 0.01;
  health.backoff_max_seconds = 0.05;
  auto service = MakeService(health);
  if (!service->residency_stats()[0].catalog.mapped) {
    GTEST_SKIP() << "mmap unavailable";
  }

  // Damage the on-disk catalog tail under the serving shard, then
  // probe: CheckShardHealth re-verifies the file and must quarantine.
  FlipFooterBytes(alpha_path_);
  Status probe = service->CheckShardHealth("alpha");
  ASSERT_FALSE(probe.ok());
  EXPECT_EQ(HealthOf(*service, "alpha").state, ShardHealth::kQuarantined);

  // Recovery cannot fully reopen (tail damaged) but salvages the body:
  // the shard serves again, degraded, catalog rebuilt in RAM.
  ASSERT_TRUE(WaitFor([&] {
    return HealthOf(*service, "alpha").state == ShardHealth::kDegraded;
  })) << "salvage did not complete in time";
  const auto salvaged = HealthOf(*service, "alpha");
  EXPECT_TRUE(salvaged.rebuilt_from_body);
  EXPECT_GE(salvaged.recoveries, 1u);
  EXPECT_FALSE(service->residency_stats()[0].catalog.mapped)
      << "a salvaged shard serves from RAM";

  // Backend parity: the rebuilt catalog answers bit-identically.
  ReclaimRequest fan;
  fan.policy = RoutingPolicy::kFanOutAll;
  auto after = service->Reclaim(source_, fan);
  ASSERT_TRUE(after.ok());
  EXPECT_TRUE(Same(*after, *ref_full_));

  // And CheckShardHealth on the healthy-file shard stays clean.
  EXPECT_TRUE(service->CheckShardHealth("beta").ok());
  EXPECT_EQ(service->CheckShardHealth("nope").code(), StatusCode::kNotFound);
}

TEST_F(ShardHealthTest, RetryBudgetExhaustsAndStopsRescheduling) {
  BuildFixture();
  BuildReferences();
  ShardHealthOptions health;
  health.backoff_initial_seconds = 0.005;
  health.backoff_max_seconds = 0.02;
  health.max_recovery_attempts = 2;
  auto service = MakeService(health);
  if (!service->residency_stats()[0].catalog.mapped) {
    GTEST_SKIP() << "mmap unavailable";
  }

  // Unlink the backing snapshot: every recovery attempt — full reopen
  // AND body salvage — must fail, so the budget runs out.
  ASSERT_TRUE(std::filesystem::remove(alpha_path_));
  ASSERT_FALSE(service->CheckShardHealth("alpha").ok());

  ASSERT_TRUE(WaitFor([&] {
    return HealthOf(*service, "alpha").next_retry_in_seconds == -1;
  })) << "retry budget did not exhaust in time";
  const auto exhausted = HealthOf(*service, "alpha");
  EXPECT_EQ(exhausted.state, ShardHealth::kQuarantined);
  EXPECT_EQ(exhausted.recovery_attempts, 2u);

  // The service keeps answering from the surviving shard.
  ReclaimRequest fan;
  fan.policy = RoutingPolicy::kFanOutAll;
  auto partial = service->Reclaim(source_, fan);
  ASSERT_TRUE(partial.ok());
  EXPECT_TRUE(Same(*partial, *ref_beta_));
}

// The TSan target: fan-out readers run concurrently with repeated
// corrupt → quarantine → restore → heal cycles. Every reader result
// must be bit-identical to the full reference or the beta-only
// reference — never an error, never a hybrid.
TEST_F(ShardHealthTest, HammerFanOutDuringQuarantineHealCycles) {
  BuildFixture();
  BuildReferences();
  ShardHealthOptions health;
  health.backoff_initial_seconds = 0.01;
  health.backoff_max_seconds = 0.05;
  auto service = MakeService(health);
  if (!service->residency_stats()[0].catalog.mapped) {
    GTEST_SKIP() << "mmap unavailable";
  }

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> served{0};
  std::atomic<uint64_t> errors{0};
  std::atomic<uint64_t> mismatches{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&] {
      ReclaimRequest fan;
      fan.policy = RoutingPolicy::kFanOutAll;
      while (!stop.load(std::memory_order_relaxed)) {
        auto r = service->Reclaim(source_, fan);
        if (!r.ok()) {
          errors.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        served.fetch_add(1, std::memory_order_relaxed);
        if (!Same(*r, *ref_full_) && !Same(*r, *ref_beta_)) {
          mismatches.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }

  const auto serving = [&] {
    return HealthOf(*service, "alpha").state != ShardHealth::kQuarantined;
  };
  for (int round = 0; round < 4; ++round) {
    FlipFooterBytes(alpha_path_);
    (void)service->CheckShardHealth("alpha");  // observes the damage
    EXPECT_TRUE(WaitFor([&] {
      const auto h = HealthOf(*service, "alpha");
      return h.state == ShardHealth::kQuarantined ||
             h.state == ShardHealth::kDegraded;
    })) << "round " << round << ": quarantine not observed";
    FlipFooterBytes(alpha_path_);  // restore
    EXPECT_TRUE(WaitFor(serving))
        << "round " << round << ": shard did not return to service";
  }

  stop.store(true, std::memory_order_relaxed);
  for (auto& t : readers) t.join();
  EXPECT_EQ(errors.load(), 0u);
  EXPECT_EQ(mismatches.load(), 0u);
  EXPECT_GT(served.load(), 0u);
  // The cycles actually exercised recovery.
  EXPECT_GE(HealthOf(*service, "alpha").recoveries, 1u);
}

}  // namespace
}  // namespace gent
