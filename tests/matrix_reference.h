// Reference int8 semantics of the alignment-matrix layer — the exact
// pre-bit-packing implementation, kept verbatim as the oracle for the
// randomized parity tests (tests/matrix_parity_test.cc) and as the
// recorded baseline for bench_microops' traversal section. NOT part of
// the library: the production path is the bit-plane encoding in
// src/matrix/alignment_matrix.{h,cc}.

#ifndef GENT_TESTS_MATRIX_REFERENCE_H_
#define GENT_TESTS_MATRIX_REFERENCE_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "src/matrix/alignment_matrix.h"
#include "src/matrix/traversal.h"
#include "src/table/table.h"
#include "src/util/status.h"

namespace gent::ref {

using RefTruthRow = std::vector<int8_t>;

class RefAlignmentMatrix {
 public:
  explicit RefAlignmentMatrix(size_t num_source_rows)
      : rows_(num_source_rows) {}

  size_t num_source_rows() const { return rows_.size(); }

  const std::vector<RefTruthRow>& alternatives(size_t src_row) const {
    return rows_[src_row];
  }
  std::vector<RefTruthRow>& mutable_alternatives(size_t src_row) {
    return rows_[src_row];
  }

  void Add(size_t src_row, RefTruthRow row) {
    rows_[src_row].push_back(std::move(row));
  }

  size_t TotalAlternatives() const {
    size_t n = 0;
    for (const auto& alts : rows_) n += alts.size();
    return n;
  }

 private:
  std::vector<std::vector<RefTruthRow>> rows_;
};

inline Result<RefAlignmentMatrix> RefInitializeMatrix(
    const Table& source, const Table& candidate,
    const MatrixOptions& options = {}) {
  if (!source.has_key()) {
    return Status::InvalidArgument("source has no key");
  }
  std::vector<size_t> cand_col(source.num_cols(), SIZE_MAX);
  for (size_t c = 0; c < source.num_cols(); ++c) {
    auto idx = candidate.ColumnIndex(source.column_name(c));
    if (idx.has_value()) cand_col[c] = *idx;
  }
  for (size_t kc : source.key_columns()) {
    if (cand_col[kc] == SIZE_MAX) {
      return Status::InvalidArgument(
          candidate.name() + " does not cover source key column " +
          source.column_name(kc) + "; run Expand() first");
    }
  }

  KeyIndex source_keys = source.BuildKeyIndex();
  RefAlignmentMatrix m(source.num_rows());

  KeyTuple key(source.key_columns().size());
  for (size_t r = 0; r < candidate.num_rows(); ++r) {
    bool null_key = false;
    for (size_t i = 0; i < source.key_columns().size(); ++i) {
      key[i] = candidate.cell(r, cand_col[source.key_columns()[i]]);
      null_key |= key[i] == kNull;
    }
    if (null_key) continue;
    auto it = source_keys.find(key);
    if (it == source_keys.end()) continue;
    for (size_t src_row : it->second) {
      RefTruthRow row(source.num_cols());
      for (size_t c = 0; c < source.num_cols(); ++c) {
        ValueId sv = source.cell(src_row, c);
        ValueId cv = cand_col[c] == SIZE_MAX ? kNull
                                             : candidate.cell(r, cand_col[c]);
        int8_t truth;
        if (sv == cv) {
          truth = 1;
        } else if (sv != kNull && cv == kNull) {
          truth = 0;
        } else {
          truth = options.three_valued ? int8_t{-1} : int8_t{0};
        }
        row[c] = truth;
      }
      m.Add(src_row, std::move(row));
    }
  }
  return m;
}

inline bool RefCombineRows(const RefTruthRow& a, const RefTruthRow& b,
                           RefTruthRow* merged) {
  for (size_t j = 0; j < a.size(); ++j) {
    if (a[j] != 0 && b[j] != 0 && a[j] != b[j]) return false;
  }
  merged->resize(a.size());
  for (size_t j = 0; j < a.size(); ++j) {
    (*merged)[j] = std::max(a[j], b[j]);
  }
  return true;
}

inline RefAlignmentMatrix RefCombineMatrices(const RefAlignmentMatrix& a,
                                             const RefAlignmentMatrix& b) {
  RefAlignmentMatrix out(a.num_source_rows());
  RefTruthRow merged;
  for (size_t i = 0; i < a.num_source_rows(); ++i) {
    std::vector<RefTruthRow> result = a.alternatives(i);
    for (const RefTruthRow& rb : b.alternatives(i)) {
      bool absorbed = false;
      for (auto& ra : result) {
        if (RefCombineRows(ra, rb, &merged)) {
          ra = merged;
          absorbed = true;
          break;
        }
      }
      if (!absorbed) result.push_back(rb);
    }
    out.mutable_alternatives(i) = std::move(result);
  }
  return out;
}

inline double RefEvaluateMatrixSimilarity(const RefAlignmentMatrix& m,
                                          const Table& source) {
  std::vector<size_t> nonkey;
  for (size_t c = 0; c < source.num_cols(); ++c) {
    if (!source.IsKeyColumn(c)) nonkey.push_back(c);
  }
  const double n = static_cast<double>(nonkey.size());
  if (source.num_rows() == 0) return 0.0;

  double total = 0.0;
  for (size_t i = 0; i < m.num_source_rows(); ++i) {
    double best = 0.0;
    for (const RefTruthRow& alt : m.alternatives(i)) {
      double alpha = 0, delta = 0;
      for (size_t c : nonkey) {
        if (alt[c] > 0) alpha += 1;
        if (alt[c] < 0) delta += 1;
      }
      double e = n == 0 ? 1.0 : (alpha - delta) / n;
      best = std::max(best, 0.5 * (1.0 + e));
    }
    total += best;
  }
  return total / static_cast<double>(source.num_rows());
}

/// The pre-rewrite MatrixTraversal: full CombineMatrices + full
/// re-evaluation per candidate per round, serial, combined matrices
/// rebuilt from scratch per pruning drop. Bit-for-bit the seed
/// algorithm; the new implementation must match its outputs exactly.
inline Result<TraversalResult> RefMatrixTraversal(
    const Table& source, const std::vector<Table>& tables,
    const TraversalOptions& options = {}) {
  TraversalResult result;
  if (tables.empty()) return result;

  std::vector<RefAlignmentMatrix> matrices;
  matrices.reserve(tables.size());
  for (const auto& t : tables) {
    GENT_ASSIGN_OR_RETURN(auto m,
                          RefInitializeMatrix(source, t, options.matrix));
    matrices.push_back(std::move(m));
  }

  size_t start = 0;
  double best_start = -1.0;
  for (size_t i = 0; i < matrices.size(); ++i) {
    double s = RefEvaluateMatrixSimilarity(matrices[i], source);
    if (s > best_start) {
      best_start = s;
      start = i;
    }
  }
  result.selected.push_back(start);
  double most_correct = best_start;

  std::vector<bool> in_set(tables.size(), false);
  in_set[start] = true;
  RefAlignmentMatrix combined = matrices[start];

  while (result.selected.size() < tables.size()) {
    double prev_correct = most_correct;
    size_t next_table = SIZE_MAX;
    RefAlignmentMatrix best_combined(0);
    for (size_t i = 0; i < tables.size(); ++i) {
      if (in_set[i]) continue;
      RefAlignmentMatrix merged = RefCombineMatrices(combined, matrices[i]);
      double score = RefEvaluateMatrixSimilarity(merged, source);
      if (score > most_correct) {
        most_correct = score;
        next_table = i;
        best_combined = std::move(merged);
      }
    }
    if (most_correct <= prev_correct || next_table == SIZE_MAX) {
      break;
    }
    in_set[next_table] = true;
    result.selected.push_back(next_table);
    combined = std::move(best_combined);
  }

  if (options.prune_redundant && result.selected.size() > 1) {
    bool pruned = true;
    while (pruned && result.selected.size() > 1) {
      pruned = false;
      for (size_t drop = result.selected.size(); drop-- > 0;) {
        RefAlignmentMatrix without(source.num_rows());
        bool first = true;
        for (size_t k = 0; k < result.selected.size(); ++k) {
          if (k == drop) continue;
          const RefAlignmentMatrix& m = matrices[result.selected[k]];
          without = first ? m : RefCombineMatrices(without, m);
          first = false;
        }
        if (RefEvaluateMatrixSimilarity(without, source) >=
            most_correct - 1e-12) {
          result.selected.erase(result.selected.begin() +
                                static_cast<ptrdiff_t>(drop));
          pruned = true;
          break;
        }
      }
    }
  }
  result.final_score = most_correct;
  return result;
}

}  // namespace gent::ref

#endif  // GENT_TESTS_MATRIX_REFERENCE_H_
