// Tests for parallel bulk reclamation (src/gent/bulk) and the
// thread-safety of the shared dictionary underneath it.

#include "src/gent/bulk.h"

#include <atomic>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/benchgen/benchmarks.h"
#include "src/metrics/similarity.h"
#include "src/table/table_builder.h"
#include "src/util/random.h"

namespace gent {
namespace {

// A lake of vertical fragments for N distinct sources.
struct BulkFixture {
  std::unique_ptr<DataLake> lake;
  std::vector<Table> sources;
};

BulkFixture MakeFixture(size_t n_sources) {
  BulkFixture out;
  out.lake = std::make_unique<DataLake>();
  const DictionaryPtr& dict = out.lake->dict();
  for (size_t s = 0; s < n_sources; ++s) {
    const std::string tag = "s" + std::to_string(s) + "_";
    TableBuilder sb(dict, "source" + std::to_string(s));
    sb.Columns({"k", "a", "b"});
    std::vector<std::vector<std::string>> rows;
    for (size_t r = 0; r < 10; ++r) {
      rows.push_back({tag + "k" + std::to_string(r),
                      tag + "a" + std::to_string(r),
                      tag + "b" + std::to_string(r)});
      sb.Row(rows.back());
    }
    out.sources.push_back(sb.Key({"k"}).Build());
    TableBuilder f1(dict, tag + "frag_a");
    f1.Columns({"k", "a"});
    for (const auto& row : rows) f1.Row({row[0], row[1]});
    (void)out.lake->AddTable(f1.Build());
    TableBuilder f2(dict, tag + "frag_b");
    f2.Columns({"k", "b"});
    for (const auto& row : rows) f2.Row({row[0], row[2]});
    (void)out.lake->AddTable(f2.Build());
  }
  return out;
}

TEST(BulkReclaimTest, AllSourcesReclaimedInOrder) {
  BulkFixture fx = MakeFixture(12);
  BulkOptions options;
  options.threads = 4;
  std::vector<BulkOutcome> outcomes =
      BulkReclaim(*fx.lake, fx.sources, {}, options);
  ASSERT_EQ(outcomes.size(), fx.sources.size());
  for (size_t i = 0; i < outcomes.size(); ++i) {
    ASSERT_TRUE(outcomes[i].result.ok())
        << i << ": " << outcomes[i].result.status().ToString();
    EXPECT_DOUBLE_EQ(
        EisScore(fx.sources[i], outcomes[i].result->reclaimed).value(), 1.0)
        << "source " << i;
  }
}

TEST(BulkReclaimTest, ParallelMatchesSequential) {
  BulkFixture fx = MakeFixture(8);
  BulkOptions seq;
  seq.threads = 1;
  BulkOptions par;
  par.threads = 4;
  auto a = BulkReclaim(*fx.lake, fx.sources, {}, seq);
  auto b = BulkReclaim(*fx.lake, fx.sources, {}, par);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].result.ok(), b[i].result.ok());
    if (!a[i].result.ok()) continue;
    // Same reclamation quality regardless of scheduling.
    EXPECT_DOUBLE_EQ(
        EisScore(fx.sources[i], a[i].result->reclaimed).value(),
        EisScore(fx.sources[i], b[i].result->reclaimed).value());
    EXPECT_EQ(a[i].result->originating_names, b[i].result->originating_names);
  }
}

TEST(BulkReclaimTest, EmptyInputs) {
  BulkFixture fx = MakeFixture(1);
  EXPECT_TRUE(BulkReclaim(*fx.lake, {}).empty());
}

TEST(BulkReclaimTest, KeylessSourceFailsItsSlotOnly) {
  BulkFixture fx = MakeFixture(3);
  Table keyless = TableBuilder(fx.lake->dict(), "keyless")
                      .Columns({"x"})
                      .Row({"1"})
                      .Build();
  std::vector<Table> sources;
  sources.push_back(fx.sources[0].Clone());
  sources.push_back(std::move(keyless));
  sources.push_back(fx.sources[2].Clone());
  auto outcomes = BulkReclaim(*fx.lake, sources);
  ASSERT_EQ(outcomes.size(), 3u);
  EXPECT_TRUE(outcomes[0].result.ok());
  EXPECT_FALSE(outcomes[1].result.ok());
  EXPECT_TRUE(outcomes[2].result.ok());
}

TEST(BulkReclaimTest, TpTrSmallSubsetUnderParallelism) {
  auto bench = MakeTpTrBenchmark("bulk", TpTrSmallConfig());
  ASSERT_TRUE(bench.ok());
  std::vector<Table> sources;
  for (size_t i = 0; i < 6 && i < bench->sources.size(); ++i) {
    sources.push_back(bench->sources[i].source.Clone());
  }
  BulkOptions options;
  options.threads = 4;
  options.timeout_seconds = 30;
  auto outcomes = BulkReclaim(*bench->lake, sources, {}, options);
  size_t ok = 0;
  for (auto& outcome : outcomes) ok += outcome.result.ok();
  EXPECT_GE(ok, 5u) << "parallel TP-TR reclamations failed";
}

// --- GenT::ReclaimBatch (engine worker pool + shared catalog) --------------

TEST(ReclaimBatchTest, FourThreadsBitIdenticalToSerialLoop) {
  BulkFixture fx = MakeFixture(10);
  GenT gent(*fx.lake);

  // The reference: plain serial Reclaim calls in input order.
  std::vector<Result<ReclamationResult>> serial;
  for (const Table& source : fx.sources) {
    serial.push_back(gent.Reclaim(source));
  }

  BatchOptions options;
  options.num_threads = 4;
  auto batch = gent.ReclaimBatch(fx.sources, options);

  ASSERT_EQ(batch.size(), serial.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    ASSERT_EQ(batch[i].ok(), serial[i].ok()) << "source " << i;
    if (!batch[i].ok()) continue;
    EXPECT_TRUE(TablesBitIdentical(batch[i]->reclaimed, serial[i]->reclaimed))
        << "source " << i;
    EXPECT_EQ(batch[i]->originating_names, serial[i]->originating_names);
    EXPECT_DOUBLE_EQ(batch[i]->predicted_eis, serial[i]->predicted_eis);
  }
}

TEST(ReclaimBatchTest, RepeatedParallelRunsAreBitIdentical) {
  // Sources generated through forked Rng substreams: each worker-ordering
  // of the batch must reproduce the same tables bit for bit.
  Rng rng(4242);
  BulkFixture fx;
  fx.lake = std::make_unique<DataLake>();
  const DictionaryPtr& dict = fx.lake->dict();
  for (size_t s = 0; s < 8; ++s) {
    Rng sub = rng.Fork();  // per-source substream
    const std::string tag = "r" + std::to_string(s) + "_";
    TableBuilder sb(dict, "source" + std::to_string(s));
    sb.Columns({"k", "a"});
    std::vector<std::vector<std::string>> rows;
    for (size_t r = 0; r < 8; ++r) {
      rows.push_back({tag + sub.AlphaNum(6), tag + sub.AlphaNum(6)});
      sb.Row(rows.back());
    }
    fx.sources.push_back(sb.Key({"k"}).Build());
    TableBuilder f(dict, tag + "frag");
    f.Columns({"k", "a"});
    for (const auto& row : rows) f.Row(row);
    (void)fx.lake->AddTable(f.Build());
  }
  GenT gent(*fx.lake);
  BatchOptions options;
  options.num_threads = 4;
  auto first = gent.ReclaimBatch(fx.sources, options);
  auto second = gent.ReclaimBatch(fx.sources, options);
  ASSERT_EQ(first.size(), second.size());
  for (size_t i = 0; i < first.size(); ++i) {
    ASSERT_TRUE(first[i].ok()) << first[i].status().ToString();
    ASSERT_TRUE(second[i].ok());
    EXPECT_TRUE(TablesBitIdentical(first[i]->reclaimed, second[i]->reclaimed))
        << "source " << i;
  }
}

TEST(ReclaimBatchTest, ExcludeSourceNameLeavesOneOut) {
  BulkFixture fx = MakeFixture(2);
  // Register the sources themselves as lake tables (same names): without
  // leave-one-out each source would reclaim trivially from itself.
  for (const Table& source : fx.sources) {
    Table copy = source.Clone();
    (void)fx.lake->AddTable(std::move(copy));
  }
  GenT gent(*fx.lake);
  BatchOptions options;
  options.num_threads = 2;
  options.exclude_source_name = true;
  auto results = gent.ReclaimBatch(fx.sources, options);
  ASSERT_EQ(results.size(), fx.sources.size());
  for (size_t i = 0; i < results.size(); ++i) {
    ASSERT_TRUE(results[i].ok()) << results[i].status().ToString();
    for (const auto& name : results[i]->originating_names) {
      EXPECT_NE(name, fx.sources[i].name()) << "source " << i;
    }
    // Fragments still reconstruct the source exactly.
    EXPECT_DOUBLE_EQ(
        EisScore(fx.sources[i], results[i]->reclaimed).value(), 1.0);
  }
}

TEST(ReclaimBatchTest, SharedCatalogAcrossGenTInstances) {
  BulkFixture fx = MakeFixture(3);
  auto catalog = std::make_shared<ColumnStatsCatalog>(*fx.lake);
  GenT a(catalog), b(catalog);
  auto ra = a.ReclaimBatch(fx.sources, size_t{2});
  auto rb = b.ReclaimBatch(fx.sources, size_t{1});
  ASSERT_EQ(ra.size(), rb.size());
  for (size_t i = 0; i < ra.size(); ++i) {
    ASSERT_TRUE(ra[i].ok());
    ASSERT_TRUE(rb[i].ok());
    EXPECT_TRUE(TablesBitIdentical(ra[i]->reclaimed, rb[i]->reclaimed));
  }
}

TEST(DictionaryConcurrencyTest, ParallelInternsAreConsistent) {
  auto dict = MakeDictionary();
  constexpr int kThreads = 8;
  constexpr int kValues = 2000;
  std::vector<std::vector<ValueId>> ids(kThreads,
                                        std::vector<ValueId>(kValues));
  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&, t]() {
      for (int v = 0; v < kValues; ++v) {
        // All threads intern the same value set concurrently.
        ids[t][v] = dict->Intern("value_" + std::to_string(v));
      }
    });
  }
  for (auto& t : pool) t.join();
  // Every thread must have received the same id for the same string.
  for (int t = 1; t < kThreads; ++t) {
    EXPECT_EQ(ids[t], ids[0]) << "thread " << t << " saw different ids";
  }
  // And lookups resolve to the same strings.
  for (int v = 0; v < kValues; ++v) {
    EXPECT_EQ(dict->StringOf(ids[0][v]), "value_" + std::to_string(v));
  }
}

TEST(DictionaryConcurrencyTest, MixedReadWriteUnderContention) {
  auto dict = MakeDictionary();
  std::atomic<bool> stop{false};
  std::atomic<int> errors{0};
  // Writers intern fresh values and create labeled nulls; readers hammer
  // StringOf/Lookup/IsLabeledNull on everything seen so far.
  std::thread writer([&]() {
    for (int i = 0; i < 5000; ++i) {
      dict->Intern("w" + std::to_string(i));
      if (i % 100 == 0) dict->CreateLabeledNull();
    }
    stop = true;
  });
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&]() {
      while (!stop) {
        const size_t n = dict->size();
        for (ValueId id = 0; id < n; id += 97) {
          const std::string& s = dict->StringOf(id);
          if (id != kNull && !dict->IsLabeledNull(id) &&
              dict->Lookup(s) != id) {
            ++errors;
          }
        }
      }
    });
  }
  writer.join();
  for (auto& t : readers) t.join();
  EXPECT_EQ(errors.load(), 0);
}

}  // namespace
}  // namespace gent
