// Runtime shard lifecycle + async admission tests for ReclaimService
// (DESIGN.md §5.6): epoch-pinned registry snapshots under concurrent
// mutation, removed-shard drain correctness, cache-epoch invalidation
// on reload, routing policies, and the SubmitReclaim admission queue
// (ordering, backpressure, cancellation). The add/remove-while-serving
// hammer runs under ThreadSanitizer in CI.

#include <atomic>
#include <filesystem>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/engine/reclaim_service.h"
#include "src/lake/snapshot.h"
#include "src/metrics/similarity.h"
#include "src/table/table_builder.h"

namespace gent {
namespace {

// Fixture: same vertical-fragment scheme as reclaim_service_test.
// Source s splits into frag_a (k,a) and frag_b (k,b); a "paired" lake
// holds both fragments of its sources.

std::vector<std::vector<std::string>> SourceRows(size_t s,
                                                 const std::string& salt = "") {
  const std::string tag = "s" + std::to_string(s) + salt + "_";
  std::vector<std::vector<std::string>> rows;
  for (size_t r = 0; r < 10; ++r) {
    rows.push_back({tag + "k" + std::to_string(r),
                    tag + "a" + std::to_string(r),
                    tag + "b" + std::to_string(r)});
  }
  return rows;
}

Table MakeSource(const DictionaryPtr& dict, size_t s,
                 const std::string& salt = "") {
  TableBuilder sb(dict, "source" + std::to_string(s));
  sb.Columns({"k", "a", "b"});
  for (const auto& row : SourceRows(s, salt)) sb.Row(row);
  return sb.Key({"k"}).Build();
}

// A lake holding both fragments for each source index in [begin, end).
DataLake MakePairedLake(const DictionaryPtr& dict, size_t begin, size_t end,
                        const std::string& salt = "") {
  DataLake lake(dict);
  for (size_t s = begin; s < end; ++s) {
    const std::string tag = "s" + std::to_string(s) + salt + "_";
    const auto rows = SourceRows(s, salt);
    TableBuilder fa(dict, tag + "frag_a");
    fa.Columns({"k", "a"});
    for (const auto& row : rows) fa.Row({row[0], row[1]});
    (void)lake.AddTable(fa.Build());
    TableBuilder fb(dict, tag + "frag_b");
    fb.Columns({"k", "b"});
    for (const auto& row : rows) fb.Row({row[0], row[2]});
    (void)lake.AddTable(fb.Build());
  }
  return lake;
}

void ExpectSameReclamation(const Result<ReclamationResult>& a,
                           const Result<ReclamationResult>& b,
                           const std::string& context) {
  ASSERT_EQ(a.ok(), b.ok()) << context << ": " << a.status().ToString()
                            << " vs " << b.status().ToString();
  if (!a.ok()) {
    EXPECT_EQ(a.status().code(), b.status().code()) << context;
    return;
  }
  EXPECT_TRUE(TablesBitIdentical(a->reclaimed, b->reclaimed)) << context;
  EXPECT_EQ(a->originating_names, b->originating_names) << context;
  EXPECT_DOUBLE_EQ(a->predicted_eis, b->predicted_eis) << context;
}

std::string TempPath(const std::string& stem) {
  return (std::filesystem::temp_directory_path() /
          (stem + "_" + std::to_string(::getpid()) + ".snap"))
      .string();
}

// --- Runtime mutation: epochs, drain, reload --------------------------------

TEST(ServiceLifecycleTest, EpochAdvancesPerMutationAndNamesTrackIt) {
  auto dict = MakeDictionary();
  DataLake alpha = MakePairedLake(dict, 0, 2);
  DataLake beta = MakePairedLake(dict, 2, 4);

  ServiceOptions options;
  options.dict = dict;
  ReclaimService service(std::move(options));
  EXPECT_EQ(service.registry_epoch(), 0u);

  ASSERT_TRUE(service.AddLakeView("alpha", alpha).ok());
  EXPECT_EQ(service.registry_epoch(), 1u);
  ASSERT_TRUE(service.AddLakeView("beta", beta).ok());
  EXPECT_EQ(service.registry_epoch(), 2u);
  EXPECT_EQ(service.lake_names(),
            (std::vector<std::string>{"alpha", "beta"}));

  ASSERT_TRUE(service.RemoveLake("alpha").ok());
  EXPECT_EQ(service.registry_epoch(), 3u);
  EXPECT_EQ(service.lake_names(), std::vector<std::string>{"beta"});
  EXPECT_EQ(service.lake("alpha").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(service.RemoveLake("alpha").code(), StatusCode::kNotFound);

  // A name can be re-registered after removal (fresh uid, fresh shard).
  ASSERT_TRUE(service.AddLakeView("alpha", alpha).ok());
  EXPECT_EQ(service.registry_epoch(), 4u);
  EXPECT_EQ(service.num_lakes(), 2u);
}

TEST(ServiceLifecycleTest, RemoveDuringConcurrentBatchDrainsOnOldEpoch) {
  auto dict = MakeDictionary();
  DataLake alpha = MakePairedLake(dict, 0, 3);
  DataLake beta = MakePairedLake(dict, 3, 6);

  ServiceOptions options;
  options.dict = dict;
  options.num_threads = 4;
  ReclaimService service(std::move(options));
  ASSERT_TRUE(service.AddLakeView("alpha", alpha).ok());
  ASSERT_TRUE(service.AddLakeView("beta", beta).ok());

  std::vector<Table> sources;
  for (size_t s = 0; s < 6; ++s) sources.push_back(MakeSource(dict, s));

  // Reference: the same batch with no concurrent mutation.
  ReclaimRequest fan_out;
  auto reference = service.ReclaimBatch(sources, fan_out);
  for (size_t i = 0; i < reference.size(); ++i) {
    ASSERT_TRUE(reference[i].ok())
        << "reference source " << i << ": " << reference[i].status().ToString();
  }

  // Hammer: run the identical batch over and over while another thread
  // keeps removing and re-adding shard "beta". Every batch pinned a
  // snapshot at admission; whichever it pinned, "alpha"-only and
  // "alpha+beta" runs are the only possible outcomes, and each is
  // deterministic. Batches that saw beta must match the reference
  // exactly (they drained on their pinned epoch even while the shard
  // was retired under them).
  auto alpha_only = [&] {
    ServiceOptions o;
    o.dict = dict;
    ReclaimService solo(std::move(o));
    EXPECT_TRUE(solo.AddLakeView("alpha", alpha).ok());
    return solo.ReclaimBatch(sources, fan_out);
  }();

  std::atomic<bool> stop{false};
  std::thread mutator([&]() {
    while (!stop.load()) {
      ASSERT_TRUE(service.RemoveLake("beta").ok());
      ASSERT_TRUE(service.AddLakeView("beta", beta).ok());
    }
  });

  for (int iter = 0; iter < 8; ++iter) {
    auto batch = service.ReclaimBatch(sources, fan_out);
    ASSERT_EQ(batch.size(), sources.size());
    for (size_t i = 0; i < batch.size(); ++i) {
      const bool saw_beta =
          batch[i].ok() &&
          TablesBitIdentical(batch[i]->reclaimed, reference[i]->reclaimed);
      const auto& want = saw_beta ? reference[i] : alpha_only[i];
      ExpectSameReclamation(batch[i], want,
                            "iter " + std::to_string(iter) + " source " +
                                std::to_string(i));
    }
  }
  stop.store(true);
  mutator.join();

  // After the dust settles the shard set is alpha+beta again.
  auto final_batch = service.ReclaimBatch(sources, fan_out);
  for (size_t i = 0; i < final_batch.size(); ++i) {
    ExpectSameReclamation(final_batch[i], reference[i], "post-hammer");
  }
}

TEST(ServiceLifecycleTest, AddRemoveWhileServingHammer) {
  // N writer threads mutating churn shards × M reader threads serving
  // requests routed to a stable shard. Readers must never crash, error,
  // or observe anything but the stable shard's deterministic answer;
  // TSan (CI) checks the synchronization underneath.
  auto dict = MakeDictionary();
  DataLake stable = MakePairedLake(dict, 0, 4);
  DataLake churn_a = MakePairedLake(dict, 4, 6);
  DataLake churn_b = MakePairedLake(dict, 6, 8);

  ServiceOptions options;
  options.dict = dict;
  options.num_threads = 2;  // leave cores for the reader/writer threads
  ReclaimService service(std::move(options));
  ASSERT_TRUE(service.AddLakeView("stable", stable).ok());

  std::vector<Table> sources;
  for (size_t s = 0; s < 4; ++s) sources.push_back(MakeSource(dict, s));

  ReclaimRequest to_stable;
  to_stable.lake = "stable";
  std::vector<Result<ReclamationResult>> reference;
  for (const Table& source : sources) {
    reference.push_back(service.Reclaim(source, to_stable));
    ASSERT_TRUE(reference.back().ok());
  }

  constexpr size_t kWriters = 2;
  constexpr size_t kReaders = 4;
  constexpr size_t kIters = 6;
  std::atomic<bool> stop{false};
  std::atomic<int> mismatches{0};

  std::vector<std::thread> writers;
  for (size_t w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w]() {
      const std::string name = "churn" + std::to_string(w);
      const DataLake& lake = w % 2 == 0 ? churn_a : churn_b;
      while (!stop.load()) {
        if (!service.AddLakeView(name, lake).ok()) continue;
        (void)service.RemoveLake(name);
      }
    });
  }
  std::vector<std::thread> readers;
  for (size_t r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r]() {
      for (size_t iter = 0; iter < kIters; ++iter) {
        for (size_t s = 0; s < sources.size(); ++s) {
          size_t i = (s + r) % sources.size();
          auto got = service.Reclaim(sources[i], to_stable);
          const auto& want = reference[i];
          bool same =
              got.ok() &&
              TablesBitIdentical(got->reclaimed, want->reclaimed) &&
              got->originating_names == want->originating_names;
          if (!same) mismatches.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : readers) t.join();
  stop.store(true);
  for (auto& t : writers) t.join();
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_EQ(service.lake("stable").status().code(), StatusCode::kOk);
}

TEST(ServiceLifecycleTest, ReloadInvalidatesCacheEpochForThatShardOnly) {
  auto dict = MakeDictionary();
  DataLake v1 = MakePairedLake(dict, 0, 2);          // holds source 0, 1
  DataLake other = MakePairedLake(dict, 2, 4);       // holds source 2, 3
  DataLake v2 = MakePairedLake(dict, 0, 1);          // drops source 1
  const std::string snap_v2 = TempPath("gent_reload_v2");
  ASSERT_TRUE(SaveSnapshot(v2, snap_v2).ok());

  ServiceOptions options;
  options.dict = dict;
  ReclaimService service(std::move(options));
  ASSERT_TRUE(service.AddLakeView("hot", v1).ok());
  ASSERT_TRUE(service.AddLakeView("other", other).ok());

  Table source1 = MakeSource(dict, 1);
  Table source2 = MakeSource(dict, 2);
  ReclaimRequest to_hot;
  to_hot.lake = "hot";
  ReclaimRequest to_other;
  to_other.lake = "other";

  // Warm both shards' cache entries.
  auto v1_answer = service.Reclaim(source1, to_hot);
  ASSERT_TRUE(v1_answer.ok());
  EXPECT_DOUBLE_EQ(EisScore(source1, v1_answer->reclaimed).value(), 1.0);
  auto other_cold = service.Reclaim(source2, to_other);
  ASSERT_TRUE(other_cold.ok());
  const auto warm_before = service.cache_stats();

  // Reload "hot" with content that can no longer reclaim source 1. A
  // stale cache hit would replay v1's candidate tables and still
  // reclaim perfectly — the whole point of uid-keyed route tags is
  // that it cannot.
  ASSERT_TRUE(service.ReloadLakeFromSnapshot("hot", snap_v2).ok());
  auto v2_answer = service.Reclaim(source1, to_hot);
  ASSERT_TRUE(v2_answer.ok());
  EXPECT_LT(EisScore(source1, v2_answer->reclaimed).value(), 1.0);

  // The untouched shard's entry survived the reload: same request hits.
  auto other_warm = service.Reclaim(source2, to_other);
  ExpectSameReclamation(other_warm, other_cold, "untouched shard");
  EXPECT_GT(service.cache_stats().hits, warm_before.hits);

  // Reloading an unknown name is NotFound and leaves the epoch alone.
  const uint64_t epoch = service.registry_epoch();
  EXPECT_EQ(service.ReloadLakeFromSnapshot("nope", snap_v2).code(),
            StatusCode::kNotFound);
  EXPECT_EQ(service.registry_epoch(), epoch);
  std::filesystem::remove(snap_v2);
}

TEST(ServiceLifecycleTest, AppendBumpsGenerationAndInvalidatesOnlyThatShard) {
  // Incremental ingest mutates shard CONTENT without re-registering:
  // the uid survives, delta_gen bumps, and the (uid, delta_gen) route
  // tag must invalidate exactly the grown shard's cache entries.
  auto dict = MakeDictionary();
  DataLake hot = MakePairedLake(dict, 0, 1);     // cannot serve source 1 yet
  DataLake other = MakePairedLake(dict, 2, 4);   // holds source 2, 3

  ServiceOptions options;
  options.dict = dict;
  ReclaimService service(std::move(options));
  ASSERT_TRUE(service.AddLake("hot", std::move(hot)).ok());
  ASSERT_TRUE(service.AddLake("other", std::move(other)).ok());

  Table source1 = MakeSource(dict, 1);
  Table source2 = MakeSource(dict, 2);
  ReclaimRequest to_hot;
  to_hot.lake = "hot";
  ReclaimRequest to_other;
  to_other.lake = "other";

  // Warm both named routes. "hot" lacks source 1's fragments, so its
  // cached answer is the imperfect one.
  auto before = service.Reclaim(source1, to_hot);
  ASSERT_TRUE(before.ok());
  EXPECT_LT(EisScore(source1, before->reclaimed).value(), 1.0);
  auto other_cold = service.Reclaim(source2, to_other);
  ASSERT_TRUE(other_cold.ok());
  const auto warm_before = service.cache_stats();

  // Grow "hot" with exactly the fragments source 1 needs. An append is
  // NOT an epoch-style re-registration — but a stale cache hit would
  // replay the imperfect pre-append answer all the same.
  {
    const auto rows = SourceRows(1);
    TableBuilder fa(dict, "s1_frag_a");
    fa.Columns({"k", "a"});
    for (const auto& row : rows) fa.Row({row[0], row[1]});
    TableBuilder fb(dict, "s1_frag_b");
    fb.Columns({"k", "b"});
    for (const auto& row : rows) fb.Row({row[0], row[2]});
    std::vector<Table> batch;
    batch.push_back(fa.Build());
    batch.push_back(fb.Build());
    ASSERT_TRUE(service.AppendTablesToLake("hot", std::move(batch)).ok());
  }

  auto after = service.Reclaim(source1, to_hot);
  ASSERT_TRUE(after.ok());
  EXPECT_DOUBLE_EQ(EisScore(source1, after->reclaimed).value(), 1.0)
      << "append was invisible — a stale (uid, delta_gen) cache replay";

  // The untouched shard's entry survived the neighbor's append.
  auto other_warm = service.Reclaim(source2, to_other);
  ExpectSameReclamation(other_warm, other_cold, "untouched shard");
  EXPECT_GT(service.cache_stats().hits, warm_before.hits);

  // And the grown shard re-caches at its new generation: an identical
  // repeat now hits without recomputing.
  const auto post_append = service.cache_stats();
  auto repeat = service.Reclaim(source1, to_hot);
  ExpectSameReclamation(repeat, after, "grown shard repeat");
  EXPECT_GT(service.cache_stats().hits, post_append.hits);
}

// --- Routing policies --------------------------------------------------------

TEST(ServiceLifecycleTest, StatsPrefilterMatchesFanOutAndPrunes) {
  auto dict = MakeDictionary();
  DataLake relevant = MakePairedLake(dict, 0, 3);
  // A shard with entirely disjoint content: zero value overlap with
  // sources 0-2, so the prefilter must skip it.
  DataLake disjoint = MakePairedLake(dict, 50, 55);

  ServiceOptions options;
  options.dict = dict;
  ReclaimService service(std::move(options));
  ASSERT_TRUE(service.AddLakeView("relevant", relevant).ok());
  ASSERT_TRUE(service.AddLakeView("disjoint", disjoint).ok());

  ReclaimRequest fan_out;
  fan_out.policy = RoutingPolicy::kFanOutAll;
  fan_out.bypass_cache = true;
  ReclaimRequest prefilter;
  prefilter.policy = RoutingPolicy::kStatsPrefilter;
  prefilter.bypass_cache = true;

  for (size_t s = 0; s < 3; ++s) {
    Table source = MakeSource(dict, s);
    auto full = service.Reclaim(source, fan_out);
    auto pruned = service.Reclaim(source, prefilter);
    ExpectSameReclamation(pruned, full, "source " + std::to_string(s));
    ASSERT_TRUE(pruned.ok());
    EXPECT_DOUBLE_EQ(EisScore(source, pruned->reclaimed).value(), 1.0);
  }
  auto stats = service.routing_stats();
  EXPECT_EQ(stats.requests, 6u);
  EXPECT_EQ(stats.shards_pruned, 3u);  // "disjoint" skipped per request

  // Policy/lake conflicts are rejected up front.
  ReclaimRequest bad_named;
  bad_named.policy = RoutingPolicy::kNamedShard;
  EXPECT_EQ(service.Reclaim(MakeSource(dict, 0), bad_named).status().code(),
            StatusCode::kInvalidArgument);
  ReclaimRequest bad_fan;
  bad_fan.policy = RoutingPolicy::kFanOutAll;
  bad_fan.lake = "relevant";
  EXPECT_EQ(service.Reclaim(MakeSource(dict, 0), bad_fan).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(ServiceLifecycleTest, PrefilterSharesCacheEntriesWithFanOutWhenNoPrune) {
  auto dict = MakeDictionary();
  DataLake lake = MakePairedLake(dict, 0, 2);
  ServiceOptions options;
  options.dict = dict;
  ReclaimService service(std::move(options));
  ASSERT_TRUE(service.AddLakeView("lake", lake).ok());

  Table source = MakeSource(dict, 0);
  ReclaimRequest fan_out;  // kAuto with empty lake = fan-out-all
  (void)service.Reclaim(source, fan_out);
  EXPECT_EQ(service.cache_stats().misses, 1u);

  // Every shard overlaps, so the prefilter selects the full set and its
  // route tag coincides with the fan-out tag: warm hit, same entry.
  ReclaimRequest prefilter;
  prefilter.policy = RoutingPolicy::kStatsPrefilter;
  (void)service.Reclaim(source, prefilter);
  EXPECT_EQ(service.cache_stats().hits, 1u);
  EXPECT_EQ(service.cache_stats().misses, 1u);

  // On a one-shard registry a single-element fold IS the shard uid, so
  // the named route shares the same entry too (identical results).
  ReclaimRequest named;
  named.lake = "lake";
  (void)service.Reclaim(source, named);
  EXPECT_EQ(service.cache_stats().hits, 2u);
  EXPECT_EQ(service.cache_stats().misses, 1u);
}

// --- Async admission ---------------------------------------------------------

TEST(ServiceLifecycleTest, SubmitReclaimMatchesSynchronousReclaim) {
  auto dict = MakeDictionary();
  DataLake lake = MakePairedLake(dict, 0, 4);
  ServiceOptions options;
  options.dict = dict;
  options.num_threads = 2;
  ReclaimService service(std::move(options));
  ASSERT_TRUE(service.AddLakeView("lake", lake).ok());

  std::vector<Table> sources;
  for (size_t s = 0; s < 4; ++s) sources.push_back(MakeSource(dict, s));

  ReclaimRequest request;
  request.lake = "lake";
  request.bypass_cache = true;  // async must match cold sync, not a hit
  std::vector<Result<ReclamationResult>> want;
  for (const Table& source : sources) {
    want.push_back(service.Reclaim(source, request));
  }

  std::vector<ReclaimTicket> tickets;
  for (const Table& source : sources) {
    auto ticket = service.SubmitReclaim(source.Clone(), request);
    ASSERT_TRUE(ticket.ok()) << ticket.status().ToString();
    ASSERT_TRUE(ticket->valid());
    tickets.push_back(std::move(*ticket));
  }
  for (size_t i = 0; i < tickets.size(); ++i) {
    ExpectSameReclamation(tickets[i].Wait(), want[i],
                          "ticket " + std::to_string(i));
    EXPECT_TRUE(tickets[i].ready());
  }
  EXPECT_EQ(service.admission_stats().queued, 0u);
}

TEST(ServiceLifecycleTest, AdmissionQueueRejectsWhenFull) {
  auto dict = MakeDictionary();
  DataLake lake = MakePairedLake(dict, 0, 2);
  ServiceOptions options;
  options.dict = dict;
  options.num_threads = 1;  // one worker: easy to saturate
  options.admission_capacity = 1;
  options.admission_policy = AdmissionPolicy::kReject;
  ReclaimService service(std::move(options));
  ASSERT_TRUE(service.AddLakeView("lake", lake).ok());

  ReclaimRequest request;
  request.lake = "lake";
  // Flood the one-slot queue; at least one submission must be shed with
  // ResourceExhausted (the worker can't drain 16 pipelines instantly),
  // and everything admitted must complete correctly.
  std::vector<ReclaimTicket> admitted;
  uint64_t rejected = 0;
  for (int i = 0; i < 16; ++i) {
    auto ticket = service.SubmitReclaim(MakeSource(dict, 0), request);
    if (ticket.ok()) {
      admitted.push_back(std::move(*ticket));
    } else {
      EXPECT_EQ(ticket.status().code(), StatusCode::kResourceExhausted);
      ++rejected;
    }
  }
  EXPECT_GT(rejected, 0u);
  EXPECT_EQ(service.admission_stats().rejected, rejected);
  ASSERT_FALSE(admitted.empty());
  for (auto& ticket : admitted) {
    EXPECT_TRUE(ticket.Wait().ok()) << ticket.Wait().status().ToString();
  }
}

TEST(ServiceLifecycleTest, BlockingAdmissionEventuallyAdmitsEverything) {
  auto dict = MakeDictionary();
  DataLake lake = MakePairedLake(dict, 0, 2);
  ServiceOptions options;
  options.dict = dict;
  options.num_threads = 1;
  options.admission_capacity = 2;
  options.admission_policy = AdmissionPolicy::kBlock;
  ReclaimService service(std::move(options));
  ASSERT_TRUE(service.AddLakeView("lake", lake).ok());

  ReclaimRequest request;
  request.lake = "lake";
  std::vector<ReclaimTicket> tickets;
  for (int i = 0; i < 8; ++i) {  // 4x the queue bound: submitters block
    auto ticket = service.SubmitReclaim(MakeSource(dict, i % 2), request);
    ASSERT_TRUE(ticket.ok());
    tickets.push_back(std::move(*ticket));
  }
  for (auto& ticket : tickets) EXPECT_TRUE(ticket.Wait().ok());
  EXPECT_EQ(service.admission_stats().rejected, 0u);
}

TEST(ServiceLifecycleTest, CancelBeforeStartResolvesToCancelled) {
  auto dict = MakeDictionary();
  DataLake lake = MakePairedLake(dict, 0, 2);
  ServiceOptions options;
  options.dict = dict;
  options.num_threads = 1;
  ReclaimService service(std::move(options));
  ASSERT_TRUE(service.AddLakeView("lake", lake).ok());

  ReclaimRequest request;
  request.lake = "lake";
  // Occupy the lone worker with a stream of work, then cancel a request
  // parked behind it. Cancel()==true now GUARANTEES a kCancelled
  // resolution whether it lands before the request starts (counted in
  // stats.cancelled) or mid-flight (stats.cancelled_mid_flight); it
  // returns false only once the result is already published.
  std::vector<ReclaimTicket> stream;
  for (int i = 0; i < 6; ++i) {
    auto t = service.SubmitReclaim(MakeSource(dict, 0), request);
    ASSERT_TRUE(t.ok());
    stream.push_back(std::move(*t));
  }
  auto victim = service.SubmitReclaim(MakeSource(dict, 1), request);
  ASSERT_TRUE(victim.ok());
  const bool cancelled = victim->Cancel();
  const auto& result = victim->Wait();
  if (cancelled) {
    EXPECT_EQ(result.status().code(), StatusCode::kCancelled);
    const auto stats = service.admission_stats();
    EXPECT_GE(stats.cancelled + stats.cancelled_mid_flight, 1u);
  } else {
    EXPECT_TRUE(result.ok()) << result.status().ToString();
  }
  // Too late to cancel once resolved.
  EXPECT_FALSE(victim->Cancel());
  for (auto& t : stream) EXPECT_TRUE(t.Wait().ok());
}

TEST(ServiceLifecycleTest, AsyncPinsSnapshotAtSubmission) {
  auto dict = MakeDictionary();
  DataLake alpha = MakePairedLake(dict, 0, 2);
  DataLake ballast = MakePairedLake(dict, 10, 12);  // keeps registry non-empty
  ServiceOptions options;
  options.dict = dict;
  options.num_threads = 1;
  ReclaimService service(std::move(options));
  ASSERT_TRUE(service.AddLakeView("alpha", alpha).ok());
  ASSERT_TRUE(service.AddLakeView("ballast", ballast).ok());

  ReclaimRequest to_alpha;
  to_alpha.lake = "alpha";
  Table source = MakeSource(dict, 0);
  auto want = service.Reclaim(source, to_alpha);
  ASSERT_TRUE(want.ok());

  // Submit, then immediately remove the shard. The ticket pinned the
  // pre-removal snapshot at SubmitReclaim, so it must still answer from
  // "alpha" — while a post-removal synchronous request must not.
  auto ticket = service.SubmitReclaim(source.Clone(), to_alpha);
  ASSERT_TRUE(ticket.ok());
  ASSERT_TRUE(service.RemoveLake("alpha").ok());
  ExpectSameReclamation(ticket->Wait(), want, "pinned async request");
  EXPECT_EQ(service.Reclaim(source, to_alpha).status().code(),
            StatusCode::kNotFound);
}

}  // namespace
}  // namespace gent
