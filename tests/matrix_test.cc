#include <gtest/gtest.h>

#include <algorithm>

#include "paper_fixtures.h"
#include "src/matrix/alignment_matrix.h"
#include "src/metrics/similarity.h"
#include "src/matrix/expand.h"
#include "src/matrix/traversal.h"
#include "src/ops/join.h"
#include "src/table/table_builder.h"

namespace gent {
namespace {

using testing::PaperSource;
using testing::PaperTableA;
using testing::PaperTableB;
using testing::PaperTableC;
using testing::PaperTableD;

class MatrixTest : public ::testing::Test {
 protected:
  DictionaryPtr dict_ = MakeDictionary();

  // Table B/C/D lack the ID key; join through A (as Expand would).
  Table WithKey(const Table& t) {
    auto j = NaturalJoin(PaperTableA(dict_), t, JoinKind::kInner);
    return std::move(j).value();
  }
};

// --- Matrix initialization (Fig. 5 / Eq. 4) ---------------------------------

TEST_F(MatrixTest, InitializeMatrixForTableA) {
  Table source = PaperSource(dict_);
  auto m = InitializeMatrix(source, PaperTableA(dict_));
  ASSERT_TRUE(m.ok());
  ASSERT_EQ(m->num_source_rows(), 3u);
  // One aligned alternative per source row.
  for (size_t i = 0; i < 3; ++i) {
    ASSERT_EQ(m->num_alternatives(i), 1u) << "row " << i;
  }
  // Fig. 5 matrix A: row0 = [1 1 0 0 1] over (ID,Name,Age,Gender,Edu) —
  // but the paper treats missing-column gender for Smith (source ⊥) as 1
  // in its drawing for table A's first row? Eq. 4: S=⊥, T=⊥ (absent) ⇒ 1.
  TruthRow r0 = m->Unpack(0, 0);
  EXPECT_EQ(r0[0], 1);  // ID matches
  EXPECT_EQ(r0[1], 1);  // Name matches
  EXPECT_EQ(r0[2], 0);  // Age: source 27, table lacks column ⇒ nullified
  EXPECT_EQ(r0[3], 1);  // Gender: source ⊥ == absent ⊥
  EXPECT_EQ(r0[4], 1);  // Education matches
  // Row 1: Brown's education is null in A but Masters in source ⇒ 0.
  TruthRow r1 = m->Unpack(1, 0);
  EXPECT_EQ(r1[4], 0);
}

TEST_F(MatrixTest, InitializeMatrixMarksContradictions) {
  Table source = PaperSource(dict_);
  Table c_keyed = WithKey(PaperTableC(dict_));
  auto m = InitializeMatrix(source, c_keyed);
  ASSERT_TRUE(m.ok());
  // Smith: source Gender ⊥, C says Male ⇒ -1 (erroneous w.r.t. source).
  auto gender = 3u;
  EXPECT_EQ(m->alternative(0, 0).truth(gender), -1);
  // Brown: Male == Male ⇒ 1.
  EXPECT_EQ(m->alternative(1, 0).truth(gender), 1);
  // Wang: Female vs Male ⇒ -1.
  EXPECT_EQ(m->alternative(2, 0).truth(gender), -1);
}

TEST_F(MatrixTest, TwoValuedAblationCollapsesErrors) {
  Table source = PaperSource(dict_);
  MatrixOptions binary;
  binary.three_valued = false;
  auto m = InitializeMatrix(source, WithKey(PaperTableC(dict_)), binary);
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m->alternative(2, 0).truth(3), 0);  // -1 becomes 0
}

TEST_F(MatrixTest, InitializeRequiresKeyCoverage) {
  Table source = PaperSource(dict_);
  auto m = InitializeMatrix(source, PaperTableB(dict_));  // no ID column
  EXPECT_FALSE(m.ok());
}

TEST_F(MatrixTest, NullKeyRowsNeverAlign) {
  Table source = PaperSource(dict_);
  Table t = TableBuilder(dict_, "t")
                .Columns({"ID", "Name"})
                .Row({"", "Smith"})
                .Build();
  auto m = InitializeMatrix(source, t);
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m->TotalAlternatives(), 0u);
}

TEST_F(MatrixTest, UnmatchedKeysIgnored) {
  Table source = PaperSource(dict_);
  Table t = TableBuilder(dict_, "t")
                .Columns({"ID", "Name"})
                .Row({"7", "Ghost"})
                .Build();
  auto m = InitializeMatrix(source, t);
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m->TotalAlternatives(), 0u);
}

// --- Combine (Eq. 5) ----------------------------------------------------------

TEST_F(MatrixTest, CombineRowsTakesMax) {
  TruthRow a{1, 0, 0, -1};
  TruthRow b{0, 1, 0, -1};
  TruthRow merged;
  ASSERT_TRUE(CombineRows(a, b, &merged));
  EXPECT_EQ(merged, (TruthRow{1, 1, 0, -1}));
}

TEST_F(MatrixTest, CombineRowsSplitsOnContradiction) {
  TruthRow a{1, 1};
  TruthRow b{1, -1};  // +1 vs -1 in column 1
  TruthRow merged;
  EXPECT_FALSE(CombineRows(a, b, &merged));
}

TEST_F(MatrixTest, CombineRowsZeroAbsorbsError) {
  // 0 vs -1 is not a contradiction under Eq. 5; max keeps 0.
  TruthRow a{1, 0};
  TruthRow b{1, -1};
  TruthRow merged;
  ASSERT_TRUE(CombineRows(a, b, &merged));
  EXPECT_EQ(merged[1], 0);
}

TEST_F(MatrixTest, CombineMatricesAccumulatesValues) {
  Table source = PaperSource(dict_);
  auto ma = InitializeMatrix(source, PaperTableA(dict_));
  auto mb = InitializeMatrix(source, WithKey(PaperTableB(dict_)));
  ASSERT_TRUE(ma.ok());
  ASSERT_TRUE(mb.ok());
  AlignmentMatrix combined = CombineMatrices(*ma, *mb);
  double sa = EvaluateMatrixSimilarity(*ma, source);
  double sab = EvaluateMatrixSimilarity(combined, source);
  EXPECT_GT(sab, sa);  // B adds the Age values
  // No contradictions between A and B: still one alternative per row.
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(combined.num_alternatives(i), 1u);
  }
}

TEST_F(MatrixTest, CombineMatricesSplitsOnContradictions) {
  Table source = PaperSource(dict_);
  auto ma = InitializeMatrix(source, PaperTableA(dict_));
  auto mc = InitializeMatrix(source, WithKey(PaperTableC(dict_)));
  ASSERT_TRUE(ma.ok());
  ASSERT_TRUE(mc.ok());
  AlignmentMatrix combined = CombineMatrices(*ma, *mc);
  // Smith's row: A has +1 at Gender (⊥==⊥), C has -1 ⇒ rows stay apart
  // (Example 10: "we find a (1) and (¬1) ... keep both tuples").
  EXPECT_EQ(combined.num_alternatives(0), 2u);
}

// --- evaluateSimilarity ----------------------------------------------------------

TEST_F(MatrixTest, EvaluateEmptyMatrixIsZero) {
  Table source = PaperSource(dict_);
  AlignmentMatrix empty(source.num_rows(), source.num_cols());
  EXPECT_DOUBLE_EQ(EvaluateMatrixSimilarity(empty, source), 0.0);
}

TEST_F(MatrixTest, EvaluatePerfectMatrixIsOne) {
  Table source = PaperSource(dict_);
  auto m = InitializeMatrix(source, source.Clone());
  ASSERT_TRUE(m.ok());
  EXPECT_DOUBLE_EQ(EvaluateMatrixSimilarity(*m, source), 1.0);
}

TEST_F(MatrixTest, EvaluateTakesBestAlternative) {
  Table source = PaperSource(dict_);
  AlignmentMatrix m(source.num_rows(), source.num_cols());
  m.Add(0, TruthRow{1, 0, 0, 0, 0});   // weak: E = (0−0)/4 → 0.5
  m.Add(0, TruthRow{1, 1, 1, 1, 1});   // perfect → 1.0
  EXPECT_NEAR(EvaluateMatrixSimilarity(m, source), 1.0 / 3.0, 1e-9);
}

TEST_F(MatrixTest, MatrixSimilarityMatchesTableEis) {
  // The matrix simulation must agree with the real EIS of the aligned
  // candidate (key-covering, same schema subset).
  Table source = PaperSource(dict_);
  Table a = PaperTableA(dict_);
  auto m = InitializeMatrix(source, a);
  ASSERT_TRUE(m.ok());
  // Matrix prediction vs EIS of the candidate itself.
  // The candidate lacks Age/Gender columns; EIS computed over the source
  // schema treats them as nulls — identical to the matrix encoding.
  double eis = EisScore(source, a).value();
  EXPECT_NEAR(EvaluateMatrixSimilarity(*m, source), eis, 1e-9);
}

// --- Expand (Algorithm 5) ----------------------------------------------------------

TEST_F(MatrixTest, ExpandJoinsKeylessCandidatesThroughKeyedOnes) {
  Table source = PaperSource(dict_);
  std::vector<Candidate> candidates;
  {
    Candidate a(PaperTableA(dict_));
    a.covers_key = true;
    a.lake_index = 0;
    candidates.push_back(std::move(a));
    Candidate b(PaperTableB(dict_));
    b.covers_key = false;
    b.lake_index = 1;
    candidates.push_back(std::move(b));
  }
  auto r = Expand(source, candidates);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->tables.size(), 2u);
  EXPECT_EQ(r->num_expanded, 1u);
  EXPECT_EQ(r->num_dropped, 0u);
  // The expanded B now has the ID column.
  const Table& expanded = r->tables[1];
  EXPECT_TRUE(expanded.HasColumn("ID"));
  EXPECT_TRUE(expanded.HasColumn("Age"));
  EXPECT_EQ(expanded.num_rows(), 3u);
}

TEST_F(MatrixTest, ExpandDropsUnreachableCandidates) {
  Table source = PaperSource(dict_);
  std::vector<Candidate> candidates;
  {
    Candidate a(PaperTableA(dict_));
    a.covers_key = true;
    candidates.push_back(std::move(a));
    // A table sharing no columns/values with anything.
    Candidate x(TableBuilder(dict_, "x").Columns({"zzz"}).Row({"q"}).Build());
    x.covers_key = false;
    candidates.push_back(std::move(x));
  }
  auto r = Expand(source, candidates);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->tables.size(), 1u);
  EXPECT_EQ(r->num_dropped, 1u);
}

// --- Matrix Traversal (Algorithm 1) ----------------------------------------------

TEST_F(MatrixTest, TraversalSelectsCleanTablesAndExcludesMisleadingOne) {
  // The paper's headline example: integrating A, B, D beats using C.
  Table source = PaperSource(dict_);
  std::vector<Table> tables;
  tables.push_back(PaperTableA(dict_));          // 0
  tables.push_back(WithKey(PaperTableB(dict_))); // 1
  tables.push_back(WithKey(PaperTableC(dict_))); // 2: misleading
  tables.push_back(WithKey(PaperTableD(dict_))); // 3
  auto r = MatrixTraversal(source, tables);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->selected.empty());
  EXPECT_EQ(std::count(r->selected.begin(), r->selected.end(), 2), 0)
      << "misleading table C must be filtered out";
  // A⋈B and A⋈D contribute values (A itself is subsumed by A⋈B, so the
  // greedy never needs it).
  EXPECT_NE(std::count(r->selected.begin(), r->selected.end(), 1), 0);
  EXPECT_NE(std::count(r->selected.begin(), r->selected.end(), 3), 0);
  EXPECT_GT(r->final_score, 0.9);
}

TEST_F(MatrixTest, TraversalStopsWhenNoImprovement) {
  Table source = PaperSource(dict_);
  std::vector<Table> tables;
  tables.push_back(source.Clone());        // perfect on its own
  tables.push_back(PaperTableA(dict_));    // adds nothing new
  auto r = MatrixTraversal(source, tables);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->selected, std::vector<size_t>{0});
  EXPECT_DOUBLE_EQ(r->final_score, 1.0);
}

TEST_F(MatrixTest, TraversalOnEmptyInput) {
  Table source = PaperSource(dict_);
  auto r = MatrixTraversal(source, {});
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->selected.empty());
  EXPECT_DOUBLE_EQ(r->final_score, 0.0);
}

TEST_F(MatrixTest, TraversalDedupesIdenticalTables) {
  // Example 9: a duplicate adds no value, so it is never selected twice.
  Table source = PaperSource(dict_);
  std::vector<Table> tables;
  tables.push_back(PaperTableA(dict_));
  Table dup = PaperTableA(dict_);
  dup.set_name("E");
  tables.push_back(dup);
  tables.push_back(WithKey(PaperTableB(dict_)));
  auto r = MatrixTraversal(source, tables);
  ASSERT_TRUE(r.ok());
  // A and its duplicate can't both be chosen: the second adds 0 new 1s.
  // (Neither may be chosen at all if A⋈B already covers A's values.)
  EXPECT_LE(std::count(r->selected.begin(), r->selected.end(), 0) +
                std::count(r->selected.begin(), r->selected.end(), 1),
            1);
}

}  // namespace
}  // namespace gent
