// End-to-end regression test on the TP-TR Small benchmark: the full
// Gen-T pipeline must stay within the reproduction band established in
// EXPERIMENTS.md (paper: Rec 0.954, Pre 0.799, 15-17/26 perfect).
//
// Deliberately coarse thresholds: this test guards against pipeline
// regressions, not against noise in individual sources.

#include <gtest/gtest.h>

#include "src/benchgen/benchmarks.h"
#include "src/gent/gent.h"
#include "src/metrics/precision_recall.h"
#include "src/metrics/similarity.h"

namespace gent {
namespace {

class TpTrSmallE2E : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto bench = MakeTpTrBenchmark("small", TpTrSmallConfig());
    ASSERT_TRUE(bench.ok());
    bench_ = new TpTrBenchmark(std::move(*bench));
    gent_ = new GenT(*bench_->lake);
  }
  static void TearDownTestSuite() {
    delete gent_;
    delete bench_;
    gent_ = nullptr;
    bench_ = nullptr;
  }

  static TpTrBenchmark* bench_;
  static GenT* gent_;
};

TpTrBenchmark* TpTrSmallE2E::bench_ = nullptr;
GenT* TpTrSmallE2E::gent_ = nullptr;

TEST_F(TpTrSmallE2E, QualityBandHolds) {
  double sum_rec = 0, sum_pre = 0;
  size_t perfect = 0;
  const size_t n = bench_->sources.size();
  ASSERT_EQ(n, 26u);
  for (const auto& spec : bench_->sources) {
    auto r = gent_->Reclaim(spec.source, OpLimits::WithTimeout(30));
    ASSERT_TRUE(r.ok()) << spec.description;
    auto pr = ComputePrecisionRecall(spec.source, r->reclaimed);
    sum_rec += pr.recall;
    sum_pre += pr.precision;
    perfect += IsPerfectReclamation(spec.source, r->reclaimed);
  }
  double avg_rec = sum_rec / static_cast<double>(n);
  double avg_pre = sum_pre / static_cast<double>(n);
  EXPECT_GE(avg_rec, 0.70) << "recall regression";
  EXPECT_GE(avg_pre, 0.60) << "precision regression";
  EXPECT_GE(perfect, 12u) << "perfect-reclamation regression";
}

TEST_F(TpTrSmallE2E, ProjectSelectUnionSourcesAreAllPerfect) {
  // The join-free class has been fully reclaimable since the fixes in
  // the discovery/variant layers; treat it as a hard invariant.
  for (const auto& spec : bench_->sources) {
    if (spec.query_class != QueryClass::kProjectSelectUnion) continue;
    auto r = gent_->Reclaim(spec.source, OpLimits::WithTimeout(30));
    ASSERT_TRUE(r.ok());
    EXPECT_TRUE(IsPerfectReclamation(spec.source, r->reclaimed))
        << spec.description;
  }
}

TEST_F(TpTrSmallE2E, NoErroneousVariantLeaksIntoPerfectSources) {
  // When a source is perfectly reclaimed, the EIS must be exactly 1.
  for (const auto& spec : bench_->sources) {
    auto r = gent_->Reclaim(spec.source, OpLimits::WithTimeout(30));
    ASSERT_TRUE(r.ok());
    if (IsPerfectReclamation(spec.source, r->reclaimed)) {
      EXPECT_DOUBLE_EQ(EisScore(spec.source, r->reclaimed).value(), 1.0);
    }
  }
}

}  // namespace
}  // namespace gent
