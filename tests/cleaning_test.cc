// Tests for reclamation-aware cleaning (src/cleaning).

#include "src/cleaning/cleaning.h"

#include <vector>

#include <gtest/gtest.h>

#include "src/metrics/similarity.h"
#include "src/table/table_builder.h"

namespace gent {
namespace {

// Fixture shapes follow the paper's Fig. 3/4 example: a keyed source,
// a reclaimed table with nullified cells, and originating tables with
// partial evidence.
class CleaningFixture : public ::testing::Test {
 protected:
  CleaningFixture() : dict_(MakeDictionary()) {
    source_ = std::make_unique<Table>(
        TableBuilder(dict_, "source")
            .Columns({"ID", "Name", "Age", "Gender"})
            .Row({"0", "Smith", "27", "Male"})
            .Row({"1", "Brown", "24", "Male"})
            .Row({"2", "Wang", "32", "Female"})
            .Key({"ID"})
            .Build());
  }

  Table Reclaimed(const std::vector<std::vector<std::string>>& rows) {
    TableBuilder builder(dict_, "reclaimed");
    builder.Columns({"ID", "Name", "Age", "Gender"});
    for (const auto& row : rows) builder.Row(row);
    return builder.Build();
  }

  DictionaryPtr dict_;
  std::unique_ptr<Table> source_;
};

TEST_F(CleaningFixture, ImputeFillsNullFromSingleWitness) {
  Table reclaimed = Reclaimed({{"0", "Smith", "", "Male"},
                               {"1", "Brown", "24", "Male"},
                               {"2", "Wang", "32", "Female"}});
  std::vector<Table> originating;
  originating.push_back(TableBuilder(dict_, "ages")
                            .Columns({"ID", "Age"})
                            .Row({"0", "27"})
                            .Build());
  CleaningStats stats;
  auto result = ImputeNulls(reclaimed, *source_, originating, {}, &stats);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->CellString(0, 2), "27");
  EXPECT_EQ(stats.cells_imputed, 1u);
  // Imputation improved EIS.
  EXPECT_GT(EisScore(*source_, *result).value(),
            EisScore(*source_, reclaimed).value());
}

TEST_F(CleaningFixture, ImputeMajorityWinsOverMinority) {
  Table reclaimed = Reclaimed({{"0", "Smith", "", "Male"}});
  std::vector<Table> originating;
  originating.push_back(TableBuilder(dict_, "w1")
                            .Columns({"ID", "Age"})
                            .Row({"0", "27"})
                            .Build());
  originating.push_back(TableBuilder(dict_, "w2")
                            .Columns({"ID", "Age"})
                            .Row({"0", "27"})
                            .Build());
  originating.push_back(TableBuilder(dict_, "w3")
                            .Columns({"ID", "Age"})
                            .Row({"0", "99"})
                            .Build());
  auto result = ImputeNulls(reclaimed, *source_, originating);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->CellString(0, 2), "27");
}

TEST_F(CleaningFixture, ImputeContestedStaysNull) {
  Table reclaimed = Reclaimed({{"0", "Smith", "", "Male"}});
  std::vector<Table> originating;
  originating.push_back(TableBuilder(dict_, "w1")
                            .Columns({"ID", "Age"})
                            .Row({"0", "27"})
                            .Build());
  originating.push_back(TableBuilder(dict_, "w2")
                            .Columns({"ID", "Age"})
                            .Row({"0", "99"})
                            .Build());
  CleaningOptions options;
  options.min_agreement = 0.6;  // 50/50 split cannot clear this
  CleaningStats stats;
  auto result =
      ImputeNulls(reclaimed, *source_, originating, options, &stats);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->cell(0, 2), kNull);
  EXPECT_EQ(stats.cells_contested, 1u);
  EXPECT_EQ(stats.cells_imputed, 0u);
}

TEST_F(CleaningFixture, ImputeRespectsSourceNulls) {
  // Source with a null Gender for Smith; evidence exists but must not
  // be used (it would fabricate an erroneous value under EIS).
  Table source = TableBuilder(dict_, "s2")
                     .Columns({"ID", "Name", "Age", "Gender"})
                     .Row({"0", "Smith", "27", ""})
                     .Key({"ID"})
                     .Build();
  Table reclaimed = Reclaimed({{"0", "Smith", "27", ""}});
  std::vector<Table> originating;
  originating.push_back(TableBuilder(dict_, "w")
                            .Columns({"ID", "Gender"})
                            .Row({"0", "Male"})
                            .Build());
  auto guarded = ImputeNulls(reclaimed, source, originating);
  ASSERT_TRUE(guarded.ok());
  EXPECT_EQ(guarded->cell(0, 3), kNull);

  CleaningOptions reckless;
  reckless.respect_source_nulls = false;
  auto filled = ImputeNulls(reclaimed, source, originating, reckless);
  ASSERT_TRUE(filled.ok());
  EXPECT_EQ(filled->CellString(0, 3), "Male");
  // And EIS confirms the guard was right.
  EXPECT_GE(EisScore(source, *guarded).value(),
            EisScore(source, *filled).value());
}

TEST_F(CleaningFixture, ImputeTrustWeightedFavorsTrustedTable) {
  Table reclaimed = Reclaimed({{"0", "Smith", "", "Male"}});
  std::vector<Table> originating;
  originating.push_back(TableBuilder(dict_, "untrusted")
                            .Columns({"ID", "Age"})
                            .Row({"0", "99"})
                            .Build());
  originating.push_back(TableBuilder(dict_, "trusted")
                            .Columns({"ID", "Age"})
                            .Row({"0", "27"})
                            .Build());
  CleaningOptions options;
  options.policy = VotePolicy::kTrustWeighted;
  options.trust = {{"trusted", 3.0}, {"untrusted", 0.5}};
  auto result = ImputeNulls(reclaimed, *source_, originating, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->CellString(0, 2), "27");
}

TEST_F(CleaningFixture, ImputeFirstPolicyTakesFirstWitness) {
  Table reclaimed = Reclaimed({{"0", "Smith", "", "Male"}});
  std::vector<Table> originating;
  originating.push_back(TableBuilder(dict_, "w1")
                            .Columns({"ID", "Age"})
                            .Row({"0", "41"})
                            .Build());
  originating.push_back(TableBuilder(dict_, "w2")
                            .Columns({"ID", "Age"})
                            .Row({"0", "27"})
                            .Build());
  CleaningOptions options;
  options.policy = VotePolicy::kFirst;
  auto result = ImputeNulls(reclaimed, *source_, originating, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->CellString(0, 2), "41");
}

TEST_F(CleaningFixture, ImputeIgnoresTablesWithoutKeyColumns) {
  Table reclaimed = Reclaimed({{"0", "Smith", "", "Male"}});
  std::vector<Table> originating;
  originating.push_back(TableBuilder(dict_, "keyless")
                            .Columns({"Name", "Age"})
                            .Row({"Smith", "27"})
                            .Build());
  auto result = ImputeNulls(reclaimed, *source_, originating);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->cell(0, 2), kNull) << "keyless table cannot vote";
}

TEST_F(CleaningFixture, ImputeRejectsSchemaMismatch) {
  Table bad = TableBuilder(dict_, "bad").Columns({"ID"}).Row({"0"}).Build();
  auto result = ImputeNulls(bad, *source_, {});
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(CleaningFixture, FuseCollapsesAlignedTuples) {
  // Integration kept two aligned tuples for key 0 (paper Fig. 4 upper).
  Table reclaimed = Reclaimed({{"0", "Smith", "27", ""},
                               {"0", "Smith", "", "Male"},
                               {"1", "Brown", "24", "Male"}});
  CleaningStats stats;
  auto result = FuseAlignedTuples(reclaimed, *source_, {}, &stats);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_rows(), 2u);
  EXPECT_EQ(stats.tuples_fused, 1u);
  // Fused tuple has both Age and Gender.
  EXPECT_EQ(result->CellString(0, 2), "27");
  EXPECT_EQ(result->CellString(0, 3), "Male");
}

TEST_F(CleaningFixture, FuseKeepsExtraAndNullKeyRows) {
  Table reclaimed = Reclaimed({{"9", "Ghost", "1", "?"},   // not a source key
                               {"", "NoKey", "2", "?"},    // null key
                               {"1", "Brown", "24", "Male"}});
  auto result = FuseAlignedTuples(reclaimed, *source_);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_rows(), 3u);
}

TEST_F(CleaningFixture, FuseMajorityResolvesConflicts) {
  Table reclaimed = Reclaimed({{"0", "Smith", "27", "Male"},
                               {"0", "Smith", "27", "Male"},
                               {"0", "Smith", "99", "Male"}});
  auto result = FuseAlignedTuples(reclaimed, *source_);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->num_rows(), 1u);
  EXPECT_EQ(result->CellString(0, 2), "27");
}

TEST_F(CleaningFixture, CleanReclaimedPipelineImprovesEis) {
  Table reclaimed = Reclaimed({{"0", "Smith", "27", ""},
                               {"0", "Smith", "", "Male"},
                               {"1", "Brown", "", "Male"},
                               {"2", "Wang", "32", "Female"}});
  std::vector<Table> originating;
  originating.push_back(TableBuilder(dict_, "ages")
                            .Columns({"ID", "Age"})
                            .Row({"1", "24"})
                            .Build());
  CleaningStats stats;
  auto cleaned =
      CleanReclaimed(reclaimed, *source_, originating, {}, &stats);
  ASSERT_TRUE(cleaned.ok());
  EXPECT_EQ(cleaned->num_rows(), 3u);
  EXPECT_GT(stats.tuples_fused, 0u);
  EXPECT_GT(stats.cells_imputed, 0u);
  const double before = EisScore(*source_, reclaimed).value();
  const double after = EisScore(*source_, *cleaned).value();
  EXPECT_GT(after, before);
  EXPECT_DOUBLE_EQ(after, 1.0) << "fully repaired in this scenario";
}

TEST_F(CleaningFixture, AlignKeysFuzzyRepairsTypoKeys) {
  Table source = TableBuilder(dict_, "named")
                     .Columns({"Name", "Age"})
                     .Row({"Katherine", "27"})
                     .Row({"Alexandra", "24"})
                     .Key({"Name"})
                     .Build();
  Table lake = TableBuilder(dict_, "lake")
                   .Columns({"Name", "Age"})
                   .Row({"Katherlne", "27"})   // typo key
                   .Row({"Alexandra", "24"})   // exact key
                   .Row({"Zebediah", "99"})    // unrelated
                   .Build();
  CleaningStats stats;
  auto aligned = AlignKeysFuzzy(lake, source, {}, &stats);
  ASSERT_TRUE(aligned.ok()) << aligned.status().ToString();
  EXPECT_EQ(aligned->CellString(0, 0), "Katherine");
  EXPECT_EQ(aligned->CellString(1, 0), "Alexandra");
  EXPECT_EQ(aligned->CellString(2, 0), "Zebediah");
  EXPECT_EQ(stats.keys_aligned, 1u);
}

TEST_F(CleaningFixture, AlignKeysFuzzyRequiresSharedDictionary) {
  Table source = TableBuilder(dict_, "s")
                     .Columns({"k"})
                     .Row({"a"})
                     .Key({"k"})
                     .Build();
  auto other_dict = MakeDictionary();
  Table foreign =
      TableBuilder(other_dict, "f").Columns({"k"}).Row({"a"}).Build();
  auto result = AlignKeysFuzzy(foreign, source);
  EXPECT_FALSE(result.ok());
}

TEST_F(CleaningFixture, KeylessSourceRejectedEverywhere) {
  Table keyless =
      TableBuilder(dict_, "k").Columns({"a"}).Row({"1"}).Build();
  EXPECT_FALSE(ImputeNulls(keyless, keyless, {}).ok());
  EXPECT_FALSE(FuseAlignedTuples(keyless, keyless).ok());
  EXPECT_FALSE(AlignKeysFuzzy(keyless, keyless).ok());
}

}  // namespace
}  // namespace gent
