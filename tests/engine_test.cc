// Tests for the engine layer: ColumnStatsCatalog (merge-based overlap
// agreeing with the legacy hash-set path) and ThreadPool.

#include "src/engine/column_stats_catalog.h"

#include <algorithm>
#include <atomic>
#include <numeric>
#include <unordered_map>
#include <unordered_set>

#include <gtest/gtest.h>

#include "src/benchgen/benchmarks.h"
#include "src/engine/thread_pool.h"
#include "src/lake/inverted_index.h"
#include "src/table/table_builder.h"
#include "src/util/random.h"

namespace gent {
namespace {

// --- SortedDistinctValues / SortedIntersectionSize -------------------------

TEST(SortedDistinctValuesTest, SortsDedupsAndSkipsNulls) {
  auto dict = MakeDictionary();
  Table t = TableBuilder(dict, "t")
                .Columns({"a"})
                .Row({"z"})
                .Row({""})
                .Row({"m"})
                .Row({"z"})
                .Row({"a"})
                .Build();
  auto vals = SortedDistinctValues(t, 0);
  ASSERT_EQ(vals.size(), 3u);
  EXPECT_TRUE(std::is_sorted(vals.begin(), vals.end()));
  for (ValueId v : vals) EXPECT_NE(v, kNull);
}

TEST(SortedDistinctValuesTest, SkipsLabeledNulls) {
  auto dict = MakeDictionary();
  Table t = TableBuilder(dict, "t").Columns({"a"}).Row({"x"}).Build();
  t.AddRow({dict->CreateLabeledNull()});
  EXPECT_EQ(SortedDistinctValues(t, 0).size(), 1u);
  EXPECT_EQ(DistinctColumnValues(t, 0).size(), 1u);
}

TEST(SortedIntersectionSizeTest, MatchesHashSetPath) {
  std::vector<ValueId> a{1, 2, 3, 7, 9};
  std::vector<ValueId> b{2, 3, 4, 5, 9, 11};
  EXPECT_EQ(SortedIntersectionSize(a, b), 3u);
  EXPECT_EQ(SortedIntersectionSize(b, a), 3u);
  EXPECT_EQ(SortedIntersectionSize(a, {}), 0u);
  std::unordered_set<ValueId> ha(a.begin(), a.end()), hb(b.begin(), b.end());
  EXPECT_EQ(SortedIntersectionSize(a, b), SetIntersectionSize(ha, hb));
}

TEST(SortedIntersectionSizeTest, GallopingSkewPathIsExactAndSymmetric) {
  // Skewed past every level's gallop_skew_ratio (8 values vs ~2700, far
  // beyond the AVX2 table's 128), so the galloping path runs regardless
  // of dispatch level — counts and symmetry must hold regardless.
  std::vector<ValueId> big;
  for (ValueId v = 1; v <= 4000; ++v) {
    if (v % 3 != 0) big.push_back(v);
  }
  std::vector<ValueId> small{3, 5, 6, 1000, 2998, 2999, 4000, 4001};
  size_t want = 0;
  for (ValueId v : small) {
    want += std::binary_search(big.begin(), big.end(), v);
  }
  EXPECT_EQ(SortedIntersectionSize(small, big), want);
  EXPECT_EQ(SortedIntersectionSize(big, small), want);
  EXPECT_EQ(SortedIntersectionSize(big, big), big.size());
  EXPECT_EQ(SortedIntersectionSize({}, big), 0u);
}

TEST(SetIntersectionSizeTest, SkewedPairsAreSymmetric) {
  // The hash fallback guarantees the smaller set is probed into the
  // larger whichever way it is called (inverted_index.h contract);
  // counts must be identical in both orders.
  std::unordered_set<ValueId> small{5, 50, 500, 5000};
  std::unordered_set<ValueId> big;
  for (ValueId v = 1; v <= 2000; ++v) big.insert(v);
  EXPECT_EQ(SetIntersectionSize(small, big), 3u);
  EXPECT_EQ(SetIntersectionSize(big, small), 3u);
}

TEST(SortedDistinctValuesTest, BitmapAndSortPathsAgree) {
  // A column wide enough to take the dense bitmap path must produce
  // exactly what the sort path produces on the same data.
  auto dict = MakeDictionary();
  Table t("t", dict);
  ASSERT_TRUE(t.AddColumn("c").ok());
  Rng rng(77);
  std::vector<ValueId> cells;
  for (size_t i = 0; i < 8192; ++i) {
    ValueId v = rng.Bernoulli(0.05)
                    ? kNull
                    : dict->Intern("v" + std::to_string(rng.Index(900)));
    cells.push_back(v);
    t.AddRow({v});
  }
  std::vector<ValueId> want;
  for (ValueId v : cells) {
    if (v != kNull) want.push_back(v);
  }
  std::sort(want.begin(), want.end());
  want.erase(std::unique(want.begin(), want.end()), want.end());
  EXPECT_EQ(SortedDistinctValues(t, 0), want);
}

TEST(SortedContainsTest, Basics) {
  std::vector<ValueId> v{2, 4, 6};
  EXPECT_TRUE(SortedContains(v, 2));
  EXPECT_TRUE(SortedContains(v, 6));
  EXPECT_FALSE(SortedContains(v, 1));
  EXPECT_FALSE(SortedContains(v, 7));
  EXPECT_FALSE(SortedContains({}, 1));
}

// --- ColumnStatsCatalog vs. the legacy hash-set path -----------------------

// Reference overlap counts computed the pre-engine way: per-query hash
// sets probed against per-column hash sets.
std::unordered_map<ColumnRef, uint32_t, ColumnRefHash> HashOverlapCounts(
    const DataLake& lake, const std::unordered_set<ValueId>& query) {
  std::unordered_map<ColumnRef, uint32_t, ColumnRefHash> counts;
  for (size_t t = 0; t < lake.size(); ++t) {
    for (size_t c = 0; c < lake.table(t).num_cols(); ++c) {
      auto vals = DistinctColumnValues(lake.table(t), c);
      size_t n = SetIntersectionSize(vals, query);
      if (n > 0) {
        counts[ColumnRef{static_cast<uint32_t>(t),
                         static_cast<uint32_t>(c)}] =
            static_cast<uint32_t>(n);
      }
    }
  }
  return counts;
}

class CatalogParityTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto bench = MakeTpTrBenchmark("parity", TpTrSmallConfig());
    ASSERT_TRUE(bench.ok()) << bench.status().ToString();
    bench_ = std::make_unique<TpTrBenchmark>(std::move(bench).value());
  }
  std::unique_ptr<TpTrBenchmark> bench_;
};

TEST_F(CatalogParityTest, SortedValuesMatchHashSetsOnBenchgenLake) {
  const DataLake& lake = *bench_->lake;
  ColumnStatsCatalog catalog(lake);
  ASSERT_GT(catalog.num_columns(), 0u);
  for (size_t t = 0; t < lake.size(); ++t) {
    for (size_t c = 0; c < lake.table(t).num_cols(); ++c) {
      ColumnRef ref{static_cast<uint32_t>(t), static_cast<uint32_t>(c)};
      const auto& sorted = catalog.SortedValues(ref);
      EXPECT_TRUE(std::is_sorted(sorted.begin(), sorted.end()));
      auto hashed = DistinctColumnValues(lake.table(t), c);
      EXPECT_EQ(sorted.size(), hashed.size());
      EXPECT_EQ(catalog.Cardinality(ref), hashed.size());
      for (ValueId v : sorted) EXPECT_EQ(hashed.count(v), 1u);
    }
  }
}

TEST_F(CatalogParityTest, OverlapCountsMatchHashSetPath) {
  const DataLake& lake = *bench_->lake;
  ColumnStatsCatalog catalog(lake);
  // Query with every source column of the benchmark's first few sources.
  size_t queries = 0;
  for (size_t s = 0; s < bench_->sources.size() && s < 4; ++s) {
    const Table& source = bench_->sources[s].source;
    for (size_t c = 0; c < source.num_cols(); ++c) {
      auto sorted_query = SortedDistinctValues(source, c);
      if (sorted_query.empty()) continue;
      ++queries;
      std::unordered_set<ValueId> hash_query(sorted_query.begin(),
                                             sorted_query.end());
      auto expected = HashOverlapCounts(lake, hash_query);
      auto got = catalog.OverlapCounts(sorted_query);
      ASSERT_EQ(got.size(), expected.size()) << "source " << s << " col " << c;
      for (const auto& overlap : got) {
        auto it = expected.find(overlap.ref);
        ASSERT_NE(it, expected.end());
        EXPECT_EQ(overlap.count, it->second);
      }
    }
  }
  EXPECT_GT(queries, 0u);
}

TEST_F(CatalogParityTest, OverlapResultsAreOrderedByDenseColumnId) {
  ColumnStatsCatalog catalog(*bench_->lake);
  auto query = SortedDistinctValues(bench_->sources[0].source, 0);
  ASSERT_FALSE(query.empty());
  auto got = catalog.OverlapCounts(query);
  for (size_t i = 1; i < got.size(); ++i) {
    EXPECT_LT(catalog.ColumnIdOf(got[i - 1].ref),
              catalog.ColumnIdOf(got[i].ref));
  }
}

TEST_F(CatalogParityTest, TopKTablesMatchesInvertedIndexView) {
  ColumnStatsCatalog catalog(*bench_->lake);
  InvertedIndex index(*bench_->lake);
  for (size_t s = 0; s < bench_->sources.size() && s < 4; ++s) {
    const Table& source = bench_->sources[s].source;
    EXPECT_EQ(catalog.TopKTables(source, 8), index.TopKTables(source, 8));
  }
}

TEST(ColumnStatsCatalogTest, DenseIdsRoundTrip) {
  DataLake lake;
  (void)lake.AddTable(TableBuilder(lake.dict(), "a")
                          .Columns({"x", "y"})
                          .Row({"1", "2"})
                          .Build());
  (void)lake.AddTable(
      TableBuilder(lake.dict(), "b").Columns({"z"}).Row({"3"}).Build());
  ColumnStatsCatalog catalog(lake);
  ASSERT_EQ(catalog.num_columns(), 3u);
  for (uint32_t id = 0; id < catalog.num_columns(); ++id) {
    EXPECT_EQ(catalog.ColumnIdOf(catalog.RefOf(id)), id);
  }
}

TEST(ColumnStatsCatalogTest, NullsNeverEnterPostings) {
  DataLake lake;
  // A column that is mostly null would otherwise produce a pathological
  // posting list for kNull dominating every overlap scan.
  (void)lake.AddTable(TableBuilder(lake.dict(), "sparse")
                          .Columns({"a"})
                          .Row({""})
                          .Row({""})
                          .Row({"v"})
                          .Build());
  ColumnStatsCatalog catalog(lake);
  ColumnRef ref{0, 0};
  EXPECT_EQ(catalog.Cardinality(ref), 1u);
  // Querying for null must find nothing.
  const std::vector<ValueId> null_query{kNull};
  EXPECT_TRUE(catalog.OverlapCounts(null_query).empty());
}

TEST(ColumnStatsCatalogTest, SharesAnyValueProbesTheWholeLake) {
  DataLake lake;
  (void)lake.AddTable(TableBuilder(lake.dict(), "a")
                          .Columns({"x", "y"})
                          .Row({"p", "q"})
                          .Build());
  (void)lake.AddTable(
      TableBuilder(lake.dict(), "b").Columns({"z"}).Row({"r"}).Build());
  ColumnStatsCatalog catalog(lake);
  auto sorted = [&](std::vector<std::string> strs) {
    std::vector<ValueId> ids;
    for (const auto& s : strs) ids.push_back(lake.dict()->Intern(s));
    std::sort(ids.begin(), ids.end());
    return ids;
  };
  // A value from any table hits; any number of misses alone do not.
  EXPECT_TRUE(catalog.SharesAnyValue(sorted({"q"})));
  EXPECT_TRUE(catalog.SharesAnyValue(sorted({"r"})));
  EXPECT_TRUE(catalog.SharesAnyValue(sorted({"nope", "r", "also-nope"})));
  EXPECT_FALSE(catalog.SharesAnyValue(sorted({"nope", "also-nope"})));
  EXPECT_FALSE(catalog.SharesAnyValue({}));
}

// --- ThreadPool -------------------------------------------------------------

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4u);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter]() { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
  // The pool is reusable after Wait().
  pool.Submit([&counter]() { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 101);
}

TEST(ThreadPoolTest, ResolveThreads) {
  EXPECT_EQ(ThreadPool::ResolveThreads(3), 3u);
  EXPECT_GE(ThreadPool::ResolveThreads(0), 1u);
  // 0 = the machine's full hardware concurrency — no hidden cap (a
  // 32-core host must get 32 batch workers, not 8).
  size_t hw = std::thread::hardware_concurrency();
  if (hw > 0) EXPECT_EQ(ThreadPool::ResolveThreads(0), hw);
}

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  for (size_t threads : {size_t{1}, size_t{4}}) {
    std::vector<std::atomic<int>> hits(257);
    for (auto& h : hits) h = 0;
    ParallelFor(threads, hits.size(),
                [&](size_t i) { hits[i].fetch_add(1); });
    for (size_t i = 0; i < hits.size(); ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "index " << i << " @" << threads;
    }
  }
}

TEST(ParallelForTest, EmptyRangeIsANoOp) {
  ParallelFor(4, 0, [](size_t) { FAIL() << "must not be called"; });
}

TEST(ThreadPoolTest, GroupWaitIsScopedToItsOwnTasks) {
  // Wait(&group) must return once the group's tasks are done even while
  // unrelated tasks keep the pool busy — the property that decouples
  // ReclaimBatch waits from async admission traffic.
  ThreadPool pool(2);
  std::atomic<bool> release{false};
  std::atomic<int> group_done{0};
  pool.Submit([&release]() {  // untracked long-runner
    while (!release.load()) std::this_thread::yield();
  });
  ThreadPool::Group group;
  for (int i = 0; i < 8; ++i) {
    pool.Submit(&group, [&group_done]() { group_done.fetch_add(1); });
  }
  pool.Wait(&group);
  EXPECT_EQ(group_done.load(), 8);  // all group tasks done...
  release.store(true);              // ...while the long-runner still held
  pool.Wait();                      // a worker; pool-wide wait still works
}

}  // namespace
}  // namespace gent
