#include <gtest/gtest.h>

#include "paper_fixtures.h"
#include "src/metrics/divergence.h"
#include "src/metrics/precision_recall.h"
#include "src/metrics/similarity.h"
#include "src/table/table_builder.h"

namespace gent {
namespace {

using testing::PaperReclaimedS1;
using testing::PaperReclaimedS2;
using testing::PaperSource;

class MetricsTest : public ::testing::Test {
 protected:
  DictionaryPtr dict_ = MakeDictionary();
};

// --- Example 6: the paper's worked numbers ------------------------------------

TEST_F(MetricsTest, Example6InstanceSimilarity) {
  Table s = PaperSource(dict_);
  // Ŝ1: t0 = 3/4, t1 = 4/4, t2 = 3/4 → 0.833
  auto s1 = InstanceSimilarity(s, PaperReclaimedS1(dict_));
  ASSERT_TRUE(s1.ok());
  EXPECT_NEAR(*s1, 0.8333, 1e-3);
  // Ŝ2: t0 = 2/4, t1 = 4/4, t2 = 3/4 → 0.75
  auto s2 = InstanceSimilarity(s, PaperReclaimedS2(dict_));
  ASSERT_TRUE(s2.ok());
  EXPECT_NEAR(*s2, 0.75, 1e-9);
}

TEST_F(MetricsTest, Example6EisScore) {
  Table s = PaperSource(dict_);
  // Ŝ1: t0 = (3−1)/4, t1 = 4/4, t2 = 3/4 → 0.875
  auto s1 = EisScore(s, PaperReclaimedS1(dict_));
  ASSERT_TRUE(s1.ok());
  EXPECT_NEAR(*s1, 0.875, 1e-9);
  // Ŝ2: t0 = 3/4, t1 = 4/4, t2 = 3/4 → 0.917
  auto s2 = EisScore(s, PaperReclaimedS2(dict_));
  ASSERT_TRUE(s2.ok());
  EXPECT_NEAR(*s2, 0.9167, 1e-3);
}

TEST_F(MetricsTest, Example6EisPrefersNullsOverErrors) {
  // The whole point of EIS: Ŝ2 (nullified) beats Ŝ1 (erroneous) even
  // though plain instance similarity ranks them the other way.
  Table s = PaperSource(dict_);
  EXPECT_GT(*EisScore(s, PaperReclaimedS2(dict_)),
            *EisScore(s, PaperReclaimedS1(dict_)));
  EXPECT_GT(*InstanceSimilarity(s, PaperReclaimedS1(dict_)),
            *InstanceSimilarity(s, PaperReclaimedS2(dict_)));
}

// --- Tuple-level measures -------------------------------------------------------

TEST_F(MetricsTest, ErrorAwareTupleSimilarityRange) {
  ValueId a = dict_->Intern("a"), b = dict_->Intern("b");
  std::vector<size_t> nonkey{0, 1};
  // Perfect match = 1; all-errors = -1.
  EXPECT_DOUBLE_EQ(ErrorAwareTupleSimilarity({a, b}, {a, b}, nonkey), 1.0);
  EXPECT_DOUBLE_EQ(ErrorAwareTupleSimilarity({a, b}, {b, a}, nonkey), -1.0);
  // Nullified counts neither for nor against.
  EXPECT_DOUBLE_EQ(ErrorAwareTupleSimilarity({a, b}, {a, kNull}, nonkey), 0.5);
  // null == null counts as a match for EIS.
  EXPECT_DOUBLE_EQ(ErrorAwareTupleSimilarity({a, kNull}, {a, kNull}, nonkey),
                   1.0);
  // t non-null where s is null is an error.
  EXPECT_DOUBLE_EQ(ErrorAwareTupleSimilarity({a, kNull}, {a, b}, nonkey), 0.0);
}

TEST_F(MetricsTest, PlainTupleSimilarityIgnoresNullMatches) {
  ValueId a = dict_->Intern("a");
  std::vector<size_t> nonkey{0, 1};
  EXPECT_DOUBLE_EQ(TupleSimilarity({a, kNull}, {a, kNull}, nonkey), 0.5);
}

TEST_F(MetricsTest, EmptyNonKeyMeansPerfect) {
  ValueId a = dict_->Intern("a");
  EXPECT_DOUBLE_EQ(ErrorAwareTupleSimilarity({a}, {a}, {}), 1.0);
  EXPECT_DOUBLE_EQ(TupleSimilarity({a}, {a}, {}), 1.0);
}

// --- Alignment edge cases ---------------------------------------------------------

TEST_F(MetricsTest, EisRequiresSourceKey) {
  Table s = TableBuilder(dict_, "s").Columns({"a"}).Row({"1"}).Build();
  EXPECT_FALSE(EisScore(s, s).ok());
  EXPECT_FALSE(InstanceSimilarity(s, s).ok());
}

TEST_F(MetricsTest, EisZeroWhenKeyMissingFromReclaimed) {
  Table s = PaperSource(dict_);
  Table no_key = TableBuilder(dict_, "r")
                     .Columns({"Name", "Age"})
                     .Row({"Smith", "27"})
                     .Build();
  EXPECT_DOUBLE_EQ(*EisScore(s, no_key), 0.0);
}

TEST_F(MetricsTest, EisIdenticalTableIsOne) {
  Table s = PaperSource(dict_);
  Table copy = s.Clone();
  EXPECT_DOUBLE_EQ(*EisScore(s, copy), 1.0);
  // Plain instance similarity never credits null==null (Alexe et al.), so
  // an identical table with a source null still diverges by that cell.
  EXPECT_NEAR(*InstanceDivergence(s, copy), 1.0 / 12.0, 1e-9);
}

TEST_F(MetricsTest, InstanceDivergenceZeroWithoutSourceNulls) {
  Table s = TableBuilder(dict_, "s")
                .Columns({"k", "a"})
                .Row({"1", "x"})
                .Row({"2", "y"})
                .Key({"k"})
                .Build();
  EXPECT_DOUBLE_EQ(*InstanceDivergence(s, s.Clone()), 0.0);
}

TEST_F(MetricsTest, EisUsesBestOfMultipleAlignedTuples) {
  Table s = PaperSource(dict_);
  Table r = TableBuilder(dict_, "r")
                .Columns({"ID", "Name", "Age", "Gender", "Education Level"})
                .Row({"1", "Brown", "", "", ""})        // weak aligned tuple
                .Row({"1", "Brown", "24", "Male", "Masters"})  // perfect
                .Build();
  // Row 1 scores 1.0 via the better alternative; rows 0 and 2 are absent.
  EXPECT_NEAR(*EisScore(s, r), 1.0 / 3.0, 1e-9);
}

TEST_F(MetricsTest, LabeledNullsMatchSourceNullWhenEnabled) {
  Table s = PaperSource(dict_);
  Table r = s.Clone();
  // Replace Smith's (source-null) gender with a labeled null.
  ValueId label = dict_->CreateLabeledNull();
  r.set_cell(0, 3, label);
  EisOptions strict;  // default: labeled null is an erroneous value
  EisOptions lenient;
  lenient.labeled_nulls_match_source_null = true;
  EXPECT_LT(*EisScore(s, r, strict), 1.0);
  EXPECT_DOUBLE_EQ(*EisScore(s, r, lenient), 1.0);
}

// --- Precision / Recall ----------------------------------------------------------

TEST_F(MetricsTest, PerfectReclamationScoresOne) {
  Table s = PaperSource(dict_);
  auto pr = ComputePrecisionRecall(s, s.Clone());
  EXPECT_DOUBLE_EQ(pr.recall, 1.0);
  EXPECT_DOUBLE_EQ(pr.precision, 1.0);
  EXPECT_DOUBLE_EQ(pr.F1(), 1.0);
  EXPECT_TRUE(IsPerfectReclamation(s, s.Clone()));
}

TEST_F(MetricsTest, ExtraTuplesHurtPrecisionNotRecall) {
  Table s = PaperSource(dict_);
  Table r = s.Clone();
  r.AddRow({dict_->Intern("9"), dict_->Intern("Nobody"), kNull, kNull, kNull});
  auto pr = ComputePrecisionRecall(s, r);
  EXPECT_DOUBLE_EQ(pr.recall, 1.0);
  EXPECT_NEAR(pr.precision, 0.75, 1e-9);
  EXPECT_FALSE(IsPerfectReclamation(s, r));
}

TEST_F(MetricsTest, MissingTuplesHurtRecall) {
  Table s = PaperSource(dict_);
  Table r = s.Clone();
  r.RemoveRows({2});
  auto pr = ComputePrecisionRecall(s, r);
  EXPECT_NEAR(pr.recall, 2.0 / 3.0, 1e-9);
  EXPECT_DOUBLE_EQ(pr.precision, 1.0);
}

TEST_F(MetricsTest, ValueMismatchBreaksTupleMatch) {
  Table s = PaperSource(dict_);
  Table r = s.Clone();
  r.set_cell(0, 2, dict_->Intern("99"));  // wrong age
  auto pr = ComputePrecisionRecall(s, r);
  EXPECT_NEAR(pr.recall, 2.0 / 3.0, 1e-9);
}

TEST_F(MetricsTest, EmptyReclamationScoresZero) {
  Table s = PaperSource(dict_);
  Table empty = TableBuilder(dict_, "e")
                    .Columns({"ID", "Name", "Age", "Gender", "Education Level"})
                    .Build();
  auto pr = ComputePrecisionRecall(s, empty);
  EXPECT_DOUBLE_EQ(pr.recall, 0.0);
  EXPECT_DOUBLE_EQ(pr.precision, 0.0);
  EXPECT_DOUBLE_EQ(pr.F1(), 0.0);
}

TEST_F(MetricsTest, PrecisionRecallProjectsOntoSourceSchema) {
  Table s = PaperSource(dict_);
  // Same data, extra column, shuffled column order: still perfect.
  Table r = TableBuilder(dict_, "r")
                .Columns({"Education Level", "extra", "Name", "ID", "Age",
                          "Gender"})
                .Row({"Bachelors", "junk", "Smith", "0", "27", ""})
                .Row({"Masters", "junk", "Brown", "1", "24", "Male"})
                .Row({"High School", "junk", "Wang", "2", "32", "Female"})
                .Build();
  EXPECT_TRUE(IsPerfectReclamation(s, r));
}

// --- Divergence measures -----------------------------------------------------------

TEST_F(MetricsTest, InstanceDivergenceComplementsSimilarity) {
  Table s = PaperSource(dict_);
  auto div = InstanceDivergence(s, PaperReclaimedS1(dict_));
  ASSERT_TRUE(div.ok());
  EXPECT_NEAR(*div, 1.0 - 0.8333, 1e-3);
}

TEST_F(MetricsTest, KlZeroForPerfectReclamation) {
  Table s = PaperSource(dict_);
  auto kl = ConditionalKlDivergence(s, s.Clone());
  ASSERT_TRUE(kl.ok());
  EXPECT_NEAR(*kl, 0.0, 1e-9);
}

TEST_F(MetricsTest, KlPenalizesErrorsTwiceAsMuchAsNulls) {
  Table s = PaperSource(dict_);
  Table nullified = s.Clone();
  nullified.set_cell(1, 2, kNull);  // Brown's age nullified
  Table erroneous = s.Clone();
  erroneous.set_cell(1, 2, dict_->Intern("999"));  // Brown's age wrong
  double kl_null = *ConditionalKlDivergence(s, nullified);
  double kl_err = *ConditionalKlDivergence(s, erroneous);
  EXPECT_GT(kl_null, 0.0);
  EXPECT_NEAR(kl_err, 2.0 * kl_null, 1e-6);
}

TEST_F(MetricsTest, KlCapsWhenNothingReclaimed) {
  Table s = PaperSource(dict_);
  Table empty = TableBuilder(dict_, "e")
                    .Columns({"ID", "Name", "Age", "Gender", "Education Level"})
                    .Build();
  KlOptions opts;
  auto kl = ConditionalKlDivergence(s, empty, opts);
  ASSERT_TRUE(kl.ok());
  EXPECT_DOUBLE_EQ(*kl, opts.cap);
}

TEST_F(MetricsTest, KlGrowsAsKeyCoverageShrinks) {
  Table s = PaperSource(dict_);
  Table partial = s.Clone();
  partial.RemoveRows({2});
  partial.set_cell(0, 2, kNull);
  Table full = s.Clone();
  full.set_cell(0, 2, kNull);
  // Same single nullified cell, but Q(K) = 2/3 vs 1 inflates divergence.
  EXPECT_GT(*ConditionalKlDivergence(s, partial),
            *ConditionalKlDivergence(s, full));
}

}  // namespace
}  // namespace gent
