// Deterministic storage-fault tests (DESIGN.md §5.11): the gent::io
// FaultInjector unit contract, failure atomicity of the crash-atomic
// snapshot commit (injected ENOSPC/EIO/short writes leave the
// destination untouched and strand no temp), an exhaustive crash-point
// matrix over the v2 writer (every prefix of the write stream leaves
// the destination loadable as the OLD snapshot or the NEW one, never a
// hybrid), orphan-temp sweeping, and VerifySnapshotIntegrity.

#include <cerrno>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

#include <gtest/gtest.h>

#include "src/gent/gent.h"
#include "src/lake/snapshot.h"
#include "src/storage/catalog_pager.h"
#include "src/storage/io.h"
#include "src/storage/paged_file.h"
#include "src/table/table_builder.h"

namespace gent {
namespace {

class StorageFaultTest : public ::testing::Test {
 protected:
  StorageFaultTest() {
    dir_ = std::filesystem::temp_directory_path() /
           ("gent_fault_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::create_directories(dir_);
  }
  ~StorageFaultTest() override {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }

  std::string Path(const std::string& name) const {
    return (dir_ / name).string();
  }

  std::string TempName(const std::string& path) const {
    return path + ".tmp." + std::to_string(::getpid());
  }

  /// A small lake whose single table carries `marker` — enough to tell
  /// apart which snapshot generation a loaded file came from.
  static DataLake MakeLake(const std::string& marker) {
    DataLake lake;
    (void)lake.AddTable(TableBuilder(lake.dict(), "data")
                            .Columns({"k", "v"})
                            .Row({"1", marker})
                            .Row({"2", "shared"})
                            .Key({"k"})
                            .Build());
    return lake;
  }

  /// Loads `path` into a fresh lake and returns the marker cell, or ""
  /// if the load failed (the caller asserts on it).
  static std::string MarkerOf(const std::string& path) {
    DataLake lake;
    if (!LoadSnapshot(lake, path).ok()) return std::string();
    if (lake.size() != 1 || lake.table(0).num_rows() < 1) return std::string();
    return lake.table(0).CellString(0, 1);
  }

  std::filesystem::path dir_;
};

// --- Injector unit behavior -------------------------------------------------

TEST_F(StorageFaultTest, InjectorCountsTriggersAndCrashSticks) {
  io::FaultInjector injector;
  EXPECT_EQ(injector.CountOf(io::Op::kWrite), 0u);

  // Unarmed: every call passes but is counted.
  EXPECT_EQ(injector.OnCall(io::Op::kWrite), io::FaultInjector::Outcome::kPass);
  EXPECT_EQ(injector.CountOf(io::Op::kWrite), 1u);

  // One-shot errno on the 2nd matching call; later calls pass again.
  io::FaultPlan plan;
  plan.op_mask = io::OpBit(io::Op::kWrite);
  plan.trigger_at = 2;
  plan.kind = io::FaultKind::kErrno;
  plan.error_code = ENOSPC;
  injector.Arm(plan);
  EXPECT_EQ(injector.OnCall(io::Op::kFlush),
            io::FaultInjector::Outcome::kPass);  // not in mask
  EXPECT_EQ(injector.OnCall(io::Op::kWrite), io::FaultInjector::Outcome::kPass);
  EXPECT_EQ(injector.OnCall(io::Op::kWrite),
            io::FaultInjector::Outcome::kErrno);
  EXPECT_EQ(injector.OnCall(io::Op::kWrite), io::FaultInjector::Outcome::kPass);
  EXPECT_EQ(injector.error_code(), ENOSPC);

  // Crash: sticky for mutating ops, reads still pass.
  plan.trigger_at = 1;
  plan.kind = io::FaultKind::kCrash;
  injector.Arm(plan);
  EXPECT_FALSE(injector.crashed());
  EXPECT_EQ(injector.OnCall(io::Op::kWrite),
            io::FaultInjector::Outcome::kCrashed);
  EXPECT_TRUE(injector.crashed());
  EXPECT_EQ(injector.OnCall(io::Op::kRename),
            io::FaultInjector::Outcome::kCrashed);
  EXPECT_EQ(injector.OnCall(io::Op::kRemove),
            io::FaultInjector::Outcome::kCrashed);
  EXPECT_EQ(injector.OnCall(io::Op::kRead), io::FaultInjector::Outcome::kPass);
  EXPECT_EQ(injector.OnCall(io::Op::kStat), io::FaultInjector::Outcome::kPass);
}

// --- Failure atomicity ------------------------------------------------------

TEST_F(StorageFaultTest, InjectedErrnoLeavesNoDestinationAndNoTemp) {
  DataLake lake = MakeLake("m");
  const std::string path = Path("fresh.snap");
  // Fail each op class the commit path exercises, one save per class.
  const io::Op ops[] = {io::Op::kOpen, io::Op::kWrite, io::Op::kFlush,
                        io::Op::kSync, io::Op::kRename};
  for (io::Op op : ops) {
    io::FaultInjector injector;
    io::FaultPlan plan;
    plan.op_mask = io::OpBit(op);
    plan.kind = io::FaultKind::kErrno;
    plan.error_code = EIO;
    injector.Arm(plan);
    {
      io::ScopedFaultInjector scope(&injector);
      Status s = SaveSnapshot(lake, path);
      // A kSync fault can land on SyncParentDir — after the rename — in
      // which case the commit happened; status is still an error.
      EXPECT_FALSE(s.ok()) << "op " << static_cast<int>(op);
      EXPECT_EQ(s.code(), StatusCode::kIOError);
    }
    EXPECT_FALSE(std::filesystem::exists(TempName(path)))
        << "op " << static_cast<int>(op);
    if (std::filesystem::exists(path)) {
      // Only the post-rename sync failure may leave the file — and then
      // it must be the complete new snapshot.
      EXPECT_EQ(op, io::Op::kSync);
      EXPECT_EQ(MarkerOf(path), "m");
      std::filesystem::remove(path);
    }
  }
}

TEST_F(StorageFaultTest, ShortWriteNeverReachesDestination) {
  DataLake lake = MakeLake("m");
  const std::string path = Path("short.snap");
  io::FaultInjector injector;
  io::FaultPlan plan;
  plan.op_mask = io::OpBit(io::Op::kWrite);
  plan.trigger_at = 4;
  plan.kind = io::FaultKind::kShortWrite;
  injector.Arm(plan);
  {
    io::ScopedFaultInjector scope(&injector);
    EXPECT_EQ(SaveSnapshot(lake, path).code(), StatusCode::kIOError);
  }
  EXPECT_FALSE(std::filesystem::exists(path));
  EXPECT_FALSE(std::filesystem::exists(TempName(path)));
}

TEST_F(StorageFaultTest, FailedOverwriteKeepsOldSnapshotLoadable) {
  // The destination already holds a good snapshot; a failed re-save
  // must leave it byte-for-byte serviceable.
  const std::string path = Path("overwrite.snap");
  ASSERT_TRUE(SaveSnapshot(MakeLake("old"), path).ok());

  DataLake next = MakeLake("new");
  io::FaultInjector injector;
  io::FaultPlan plan;
  plan.op_mask = io::OpBit(io::Op::kWrite);
  plan.trigger_at = 2;
  plan.kind = io::FaultKind::kErrno;
  plan.error_code = ENOSPC;
  injector.Arm(plan);
  {
    io::ScopedFaultInjector scope(&injector);
    EXPECT_FALSE(SaveSnapshot(next, path).ok());
  }
  EXPECT_EQ(MarkerOf(path), "old");
  EXPECT_TRUE(VerifySnapshotIntegrity(path).ok());
  EXPECT_FALSE(std::filesystem::exists(TempName(path)));
}

// --- Crash-point matrix over the v2 writer ----------------------------------

TEST_F(StorageFaultTest, V2CrashPointMatrixLeavesOldOrNew) {
  // Enumerate every mutating storage call a SaveSnapshotV2 issues and
  // simulate a crash at each one. After every crash point the
  // destination must load as exactly the OLD snapshot or exactly the
  // NEW one (and verify end to end); a stranded temp must be exactly
  // what SweepSnapshotTemps collects.
  const std::string path = Path("matrix.snap");
  {
    DataLake old_lake = MakeLake("old");
    GenT old_gent(old_lake);
    ASSERT_TRUE(
        SaveSnapshotV2(old_lake, old_gent.catalog().section_views(), path)
            .ok());
  }
  DataLake new_lake = MakeLake("new");
  GenT new_gent(new_lake);
  const auto views = new_gent.catalog().section_views();

  constexpr uint32_t kMutatingMask =
      io::OpBit(io::Op::kOpen) | io::OpBit(io::Op::kWrite) |
      io::OpBit(io::Op::kFlush) | io::OpBit(io::Op::kSync) |
      io::OpBit(io::Op::kRename);

  // Counting run: one injected-but-disarmed save sizes the matrix.
  // (The injector disables stdio buffering, so the op sequence of the
  // counting run is identical to every crash run's.)
  uint64_t total_ops = 0;
  {
    io::FaultInjector counter;
    io::ScopedFaultInjector scope(&counter);
    const std::string probe = Path("probe.snap");
    ASSERT_TRUE(SaveSnapshotV2(new_lake, views, probe).ok());
    total_ops = counter.CountOf(io::Op::kOpen) +
                counter.CountOf(io::Op::kWrite) +
                counter.CountOf(io::Op::kFlush) +
                counter.CountOf(io::Op::kSync) +
                counter.CountOf(io::Op::kRename);
  }
  ASSERT_GT(total_ops, 4u);

  size_t old_outcomes = 0;
  size_t new_outcomes = 0;
  for (uint64_t k = 1; k <= total_ops; ++k) {
    io::FaultInjector injector;
    io::FaultPlan plan;
    plan.op_mask = kMutatingMask;
    plan.trigger_at = k;
    plan.kind = io::FaultKind::kCrash;
    injector.Arm(plan);
    {
      io::ScopedFaultInjector scope(&injector);
      (void)SaveSnapshotV2(new_lake, views, path);
      EXPECT_TRUE(injector.crashed()) << "crash point " << k;
    }

    // Crash anywhere: the destination is the old file intact or the
    // new file complete — and verifies byte-for-byte either way.
    const std::string marker = MarkerOf(path);
    EXPECT_TRUE(marker == "old" || marker == "new")
        << "crash point " << k << " left an unloadable/hybrid file";
    EXPECT_TRUE(VerifySnapshotIntegrity(path).ok()) << "crash point " << k;
    if (marker == "old") {
      ++old_outcomes;
    } else {
      ++new_outcomes;
    }

    // A crash strands its temp (cleanup "didn't run"); the startup
    // sweep must collect it — and must collect nothing else.
    const bool stranded = std::filesystem::exists(TempName(path));
    const size_t swept = SweepSnapshotTemps(dir_.string());
    EXPECT_EQ(swept, stranded ? 1u : 0u) << "crash point " << k;
    EXPECT_FALSE(std::filesystem::exists(TempName(path)));

    // Re-seed the old generation when the crash landed pre-commit, so
    // every iteration starts from the same two-generation state.
    if (marker != "old") {
      // New content committed: it IS the old generation from here on —
      // no reseed needed, both generations now carry "new". Rewrite a
      // fresh "old" so the old-vs-new discrimination stays sharp.
      DataLake old_lake = MakeLake("old");
      GenT old_gent(old_lake);
      ASSERT_TRUE(
          SaveSnapshotV2(old_lake, old_gent.catalog().section_views(), path)
              .ok());
    }
  }
  // The matrix must actually exercise both outcomes: early crash
  // points preserve the old file, the post-rename tail yields the new.
  EXPECT_GT(old_outcomes, 0u);
  EXPECT_GT(new_outcomes, 0u);
}

// --- Crash-point matrix over the delta-append writer ------------------------

TEST_F(StorageFaultTest, DeltaAppendCrashPointMatrixLeavesOldOrNew) {
  // AppendSnapshotDelta mutates the snapshot IN PLACE (no temp file):
  // run blob, rewritten delta directory, fsync barrier, new footer,
  // fsync. Crash at every mutating call; the file must load as exactly
  // the pre-append generation (base only) or the post-append one (base
  // plus the run's table), and verify end to end either way.
  DictionaryPtr dict = MakeDictionary();
  DataLake base_lake(dict);
  ASSERT_TRUE(base_lake.AddTable(TableBuilder(dict, "data")
                                     .Columns({"k", "v"})
                                     .Row({"1", "old"})
                                     .Key({"k"})
                                     .Build())
                  .ok());
  GenT base_gent(base_lake);
  const std::string tmpl = Path("append_base.snap");
  ASSERT_TRUE(
      SaveSnapshotV2(base_lake, base_gent.catalog().section_views(), tmpl)
          .ok());

  // The appended table interns values the base file's dictionary does
  // not cover, so the run must carry the growth too.
  DataLake full_lake(base_lake);
  ASSERT_TRUE(full_lake.AddTable(TableBuilder(dict, "extra")
                                     .Columns({"x"})
                                     .Row({"appended_value"})
                                     .Build())
                  .ok());
  const auto run = ColumnStatsCatalog::BuildDeltaRun(full_lake, 1);

  const std::string path = Path("append.snap");
  const auto reset = [&] {
    std::filesystem::copy_file(
        tmpl, path, std::filesystem::copy_options::overwrite_existing);
  };

  constexpr uint32_t kMutatingMask =
      io::OpBit(io::Op::kOpen) | io::OpBit(io::Op::kWrite) |
      io::OpBit(io::Op::kFlush) | io::OpBit(io::Op::kSync) |
      io::OpBit(io::Op::kRename);

  uint64_t total_ops = 0;
  {
    reset();
    io::FaultInjector counter;
    io::ScopedFaultInjector scope(&counter);
    ASSERT_TRUE(
        AppendSnapshotDelta(full_lake, 1, run.views(), path).ok());
    total_ops = counter.CountOf(io::Op::kOpen) +
                counter.CountOf(io::Op::kWrite) +
                counter.CountOf(io::Op::kFlush) +
                counter.CountOf(io::Op::kSync) +
                counter.CountOf(io::Op::kRename);
  }
  ASSERT_GT(total_ops, 3u);

  size_t old_outcomes = 0;
  size_t new_outcomes = 0;
  for (uint64_t k = 1; k <= total_ops; ++k) {
    reset();
    io::FaultInjector injector;
    io::FaultPlan plan;
    plan.op_mask = kMutatingMask;
    plan.trigger_at = k;
    plan.kind = io::FaultKind::kCrash;
    injector.Arm(plan);
    {
      io::ScopedFaultInjector scope(&injector);
      (void)AppendSnapshotDelta(full_lake, 1, run.views(), path);
      EXPECT_TRUE(injector.crashed()) << "crash point " << k;
    }

    DataLake loaded;
    SnapshotLoadInfo info;
    ASSERT_TRUE(LoadSnapshot(loaded, path, &info).ok())
        << "crash point " << k << " left an unloadable file";
    ASSERT_TRUE(loaded.size() == 1 || loaded.size() == 2)
        << "crash point " << k << " left a hybrid";
    if (loaded.size() == 1) {
      EXPECT_EQ(info.delta_runs, 0u) << "crash point " << k;
      ++old_outcomes;
    } else {
      EXPECT_EQ(info.delta_runs, 1u) << "crash point " << k;
      EXPECT_EQ(loaded.table(1).CellString(0, 0), "appended_value")
          << "crash point " << k;
      ++new_outcomes;
    }
    EXPECT_TRUE(VerifySnapshotIntegrity(path).ok()) << "crash point " << k;
    // In-place append never stages a temp, crashed or not.
    EXPECT_EQ(SweepSnapshotTemps(dir_.string()), 0u) << "crash point " << k;
  }
  // Pre-barrier crashes keep the old generation; the footer write and
  // the post-commit fsync yield the new one.
  EXPECT_GT(old_outcomes, 0u);
  EXPECT_GT(new_outcomes, 0u);
}

// --- Crash-point matrix over compaction -------------------------------------

TEST_F(StorageFaultTest, CompactionCrashPointMatrixLeavesOldOrNew) {
  // CompactSnapshotV2 folds runs via the temp + rename commit. A crash
  // at any mutating call leaves the file loadable with the SAME content
  // either way — with its run (not yet folded) or without (folded);
  // only delta_runs tells the generations apart.
  DictionaryPtr dict = MakeDictionary();
  DataLake base_lake(dict);
  ASSERT_TRUE(base_lake.AddTable(TableBuilder(dict, "data")
                                     .Columns({"k", "v"})
                                     .Row({"1", "m"})
                                     .Key({"k"})
                                     .Build())
                  .ok());
  GenT base_gent(base_lake);
  const std::string tmpl = Path("compact_base.snap");
  ASSERT_TRUE(
      SaveSnapshotV2(base_lake, base_gent.catalog().section_views(), tmpl)
          .ok());
  DataLake full_lake(base_lake);
  ASSERT_TRUE(full_lake.AddTable(TableBuilder(dict, "extra")
                                     .Columns({"x"})
                                     .Row({"run_value"})
                                     .Build())
                  .ok());
  {
    const auto run = ColumnStatsCatalog::BuildDeltaRun(full_lake, 1);
    ASSERT_TRUE(
        AppendSnapshotDelta(full_lake, 1, run.views(), tmpl).ok());
  }

  const std::string path = Path("compact.snap");
  const auto reset = [&] {
    std::filesystem::copy_file(
        tmpl, path, std::filesystem::copy_options::overwrite_existing);
  };

  constexpr uint32_t kMutatingMask =
      io::OpBit(io::Op::kOpen) | io::OpBit(io::Op::kWrite) |
      io::OpBit(io::Op::kFlush) | io::OpBit(io::Op::kSync) |
      io::OpBit(io::Op::kRename);

  uint64_t total_ops = 0;
  {
    reset();
    io::FaultInjector counter;
    io::ScopedFaultInjector scope(&counter);
    size_t folded = 0;
    ASSERT_TRUE(CompactSnapshotV2(path, &folded).ok());
    ASSERT_EQ(folded, 1u);
    total_ops = counter.CountOf(io::Op::kOpen) +
                counter.CountOf(io::Op::kWrite) +
                counter.CountOf(io::Op::kFlush) +
                counter.CountOf(io::Op::kSync) +
                counter.CountOf(io::Op::kRename);
  }
  ASSERT_GT(total_ops, 4u);

  size_t unfolded_outcomes = 0;
  size_t folded_outcomes = 0;
  for (uint64_t k = 1; k <= total_ops; ++k) {
    reset();
    io::FaultInjector injector;
    io::FaultPlan plan;
    plan.op_mask = kMutatingMask;
    plan.trigger_at = k;
    plan.kind = io::FaultKind::kCrash;
    injector.Arm(plan);
    {
      io::ScopedFaultInjector scope(&injector);
      (void)CompactSnapshotV2(path);
      EXPECT_TRUE(injector.crashed()) << "crash point " << k;
    }

    DataLake loaded;
    SnapshotLoadInfo info;
    ASSERT_TRUE(LoadSnapshot(loaded, path, &info).ok())
        << "crash point " << k << " left an unloadable file";
    // Content is generation-independent: both tables, same cells.
    ASSERT_EQ(loaded.size(), 2u) << "crash point " << k;
    EXPECT_EQ(loaded.table(0).CellString(0, 1), "m") << "crash point " << k;
    EXPECT_EQ(loaded.table(1).CellString(0, 0), "run_value")
        << "crash point " << k;
    EXPECT_TRUE(VerifySnapshotIntegrity(path).ok()) << "crash point " << k;
    if (info.delta_runs == 1) {
      ++unfolded_outcomes;
    } else {
      EXPECT_EQ(info.delta_runs, 0u) << "crash point " << k;
      ++folded_outcomes;
    }

    // A crash before the rename strands the staging temp; the startup
    // sweep collects it (and nothing else).
    const bool stranded = std::filesystem::exists(TempName(path));
    const size_t swept = SweepSnapshotTemps(dir_.string());
    EXPECT_EQ(swept, stranded ? 1u : 0u) << "crash point " << k;
  }
  EXPECT_GT(unfolded_outcomes, 0u);
  EXPECT_GT(folded_outcomes, 0u);
}

// --- Read-side and verification ---------------------------------------------

TEST_F(StorageFaultTest, InjectedReadErrorSurfacesAsTypedIOError) {
  const std::string path = Path("readerr.snap");
  ASSERT_TRUE(SaveSnapshot(MakeLake("m"), path).ok());

  io::FaultInjector injector;
  io::FaultPlan plan;
  plan.op_mask = io::OpBit(io::Op::kRead);
  plan.trigger_at = 3;
  plan.kind = io::FaultKind::kErrno;
  plan.error_code = EIO;
  injector.Arm(plan);
  io::ScopedFaultInjector scope(&injector);
  DataLake lake;
  Status s = LoadSnapshot(lake, path);
  EXPECT_EQ(s.code(), StatusCode::kIOError);
  EXPECT_EQ(lake.size(), 0u);  // all-or-nothing held
}

TEST_F(StorageFaultTest, VerifyIntegrityDetectsBitFlips) {
  // v2: a flip inside any checksummed payload — body or any catalog
  // section — must fail verification, as must one in the footer itself.
  // (Only the zero padding between block-aligned sections is don't-care
  // bytes.)
  const std::string path = Path("verify.snap");
  DataLake lake = MakeLake("m");
  GenT gent(lake);
  ASSERT_TRUE(
      SaveSnapshotV2(lake, gent.catalog().section_views(), path).ok());
  ASSERT_TRUE(VerifySnapshotIntegrity(path).ok());

  const auto size = std::filesystem::file_size(path);
  std::vector<uint64_t> offsets = {24, size - 12};  // body head, footer
  {
    std::FILE* f = io::Fopen(path.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    auto footer = storage::ReadFooter(f);
    io::Fclose(f);
    ASSERT_TRUE(footer.ok());
    for (const auto& desc : footer->sections) {
      if (desc.bytes == 0) continue;
      offsets.push_back(desc.offset + desc.bytes / 2);
    }
    ASSERT_GT(offsets.size(), 3u) << "fixture catalog has no sections";
  }
  for (uint64_t offset : offsets) {
    std::fstream f(path,
                   std::ios::in | std::ios::out | std::ios::binary);
    f.seekg(static_cast<std::streamoff>(offset));
    char byte = 0;
    f.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x40);
    f.seekp(static_cast<std::streamoff>(offset));
    f.write(&byte, 1);
    f.close();
    EXPECT_FALSE(VerifySnapshotIntegrity(path).ok())
        << "flip at offset " << offset << " not detected";
    // Restore.
    std::fstream g(path,
                   std::ios::in | std::ios::out | std::ios::binary);
    byte = static_cast<char>(byte ^ 0x40);
    g.seekp(static_cast<std::streamoff>(offset));
    g.write(&byte, 1);
    g.close();
    ASSERT_TRUE(VerifySnapshotIntegrity(path).ok());
  }

  // v1 (no checksums): verification is a full structural parse; a
  // truncation must fail it.
  const std::string v1 = Path("verify_v1.snap");
  ASSERT_TRUE(SaveSnapshot(lake, v1).ok());
  ASSERT_TRUE(VerifySnapshotIntegrity(v1).ok());
  std::filesystem::resize_file(v1, std::filesystem::file_size(v1) - 5);
  EXPECT_FALSE(VerifySnapshotIntegrity(v1).ok());

  EXPECT_EQ(VerifySnapshotIntegrity(Path("missing.snap")).code(),
            StatusCode::kIOError);
}

TEST_F(StorageFaultTest, VerifyIntegrityDetectsDeltaRunBitFlips) {
  // A flip anywhere inside an appended run blob — dictionary growth,
  // table bytes, or the run catalog — must fail verification and the
  // full load, exactly like a flip in a base section.
  DictionaryPtr dict = MakeDictionary();
  DataLake lake(dict);
  ASSERT_TRUE(lake.AddTable(TableBuilder(dict, "data")
                                .Columns({"k", "v"})
                                .Row({"1", "m"})
                                .Key({"k"})
                                .Build())
                  .ok());
  GenT gent(lake);
  const std::string path = Path("rundamage.snap");
  ASSERT_TRUE(
      SaveSnapshotV2(lake, gent.catalog().section_views(), path).ok());
  ASSERT_TRUE(lake.AddTable(TableBuilder(dict, "extra")
                                .Columns({"x"})
                                .Row({"run_value"})
                                .Build())
                  .ok());
  const auto run = ColumnStatsCatalog::BuildDeltaRun(lake, 1);
  ASSERT_TRUE(AppendSnapshotDelta(lake, 1, run.views(), path).ok());
  ASSERT_TRUE(VerifySnapshotIntegrity(path).ok());

  // Locate the run extent from the delta directory.
  storage::DeltaRunDesc desc;
  {
    std::FILE* f = io::Fopen(path.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    auto footer = storage::ReadFooterRecover(f);
    ASSERT_TRUE(footer.ok());
    auto runs = storage::ReadDeltaDir(f, *footer);
    io::Fclose(f);
    ASSERT_TRUE(runs.ok());
    ASSERT_EQ(runs->size(), 1u);
    desc = runs->front();
  }
  for (uint64_t offset : {desc.offset, desc.offset + desc.bytes / 2,
                          desc.offset + desc.bytes - 1}) {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekg(static_cast<std::streamoff>(offset));
    char byte = 0;
    f.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x40);
    f.seekp(static_cast<std::streamoff>(offset));
    f.write(&byte, 1);
    f.close();
    EXPECT_FALSE(VerifySnapshotIntegrity(path).ok())
        << "flip at run offset " << offset << " not detected";
    DataLake poisoned;
    EXPECT_FALSE(LoadSnapshot(poisoned, path).ok())
        << "flip at run offset " << offset << " loaded anyway";
    EXPECT_EQ(poisoned.size(), 0u);
    std::fstream g(path, std::ios::in | std::ios::out | std::ios::binary);
    byte = static_cast<char>(byte ^ 0x40);
    g.seekp(static_cast<std::streamoff>(offset));
    g.write(&byte, 1);
    g.close();
    ASSERT_TRUE(VerifySnapshotIntegrity(path).ok());
  }
}

TEST_F(StorageFaultTest, SalvageLoadIgnoresDamagedCatalogTail) {
  const std::string path = Path("salvage.snap");
  DataLake lake = MakeLake("m");
  GenT gent(lake);
  ASSERT_TRUE(
      SaveSnapshotV2(lake, gent.catalog().section_views(), path).ok());

  // Damage the footer: the full load must refuse, the body salvage
  // must still produce every table.
  const auto size = std::filesystem::file_size(path);
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(static_cast<std::streamoff>(size - 16));
    const char junk[8] = {'X', 'X', 'X', 'X', 'X', 'X', 'X', 'X'};
    f.write(junk, sizeof junk);
  }
  DataLake full;
  EXPECT_FALSE(LoadSnapshot(full, path).ok());
  EXPECT_EQ(full.size(), 0u);

  DataLake body;
  SnapshotLoadInfo info;
  ASSERT_TRUE(LoadSnapshotBody(body, path, &info).ok());
  EXPECT_EQ(info.version, 2u);
  ASSERT_EQ(body.size(), 1u);
  EXPECT_EQ(body.table(0).CellString(0, 1), "m");
}

TEST_F(StorageFaultTest, SweepMatchesOnlyCommitTempNames) {
  const auto touch = [&](const std::string& name) {
    std::ofstream(Path(name)) << "x";
  };
  touch("keep.snap");
  touch("keep.tmp");          // no pid suffix
  touch("keep.tmp.12ab");     // non-digit suffix
  touch("keep.tmp.");         // empty suffix
  touch("a.snap.tmp.123");
  touch("b.snap.tmp.99999");
  EXPECT_EQ(SweepSnapshotTemps(dir_.string()), 2u);
  EXPECT_TRUE(std::filesystem::exists(Path("keep.snap")));
  EXPECT_TRUE(std::filesystem::exists(Path("keep.tmp")));
  EXPECT_TRUE(std::filesystem::exists(Path("keep.tmp.12ab")));
  EXPECT_TRUE(std::filesystem::exists(Path("keep.tmp.")));
  EXPECT_FALSE(std::filesystem::exists(Path("a.snap.tmp.123")));
  EXPECT_FALSE(std::filesystem::exists(Path("b.snap.tmp.99999")));
  EXPECT_EQ(SweepSnapshotTemps(Path("no_such_dir")), 0u);
}

}  // namespace
}  // namespace gent
