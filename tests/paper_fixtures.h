// Shared fixtures reproducing the paper's running example (Figures 3-5,
// Examples 3, 6, 10): an applicant Source Table and lake tables A-D,
// where Table C contradicts the source's Gender column.

#ifndef GENT_TESTS_PAPER_FIXTURES_H_
#define GENT_TESTS_PAPER_FIXTURES_H_

#include "src/table/table_builder.h"

namespace gent::testing {

// Source (Fig. 3, green): key ID.
//   (0, Smith, 27, ⊥,      Bachelors)
//   (1, Brown, 24, Male,   Masters)
//   (2, Wang,  32, Female, High School)
inline Table PaperSource(const DictionaryPtr& dict) {
  return TableBuilder(dict, "source")
      .Columns({"ID", "Name", "Age", "Gender", "Education Level"})
      .Row({"0", "Smith", "27", "", "Bachelors"})
      .Row({"1", "Brown", "24", "Male", "Masters"})
      .Row({"2", "Wang", "32", "Female", "High School"})
      .Key({"ID"})
      .Build();
}

// Table A: has the key; Brown's education is missing.
inline Table PaperTableA(const DictionaryPtr& dict) {
  return TableBuilder(dict, "A")
      .Columns({"ID", "Name", "Education Level"})
      .Row({"0", "Smith", "Bachelors"})
      .Row({"1", "Brown", ""})
      .Row({"2", "Wang", "High School"})
      .Build();
}

// Table B: ages, no key column.
inline Table PaperTableB(const DictionaryPtr& dict) {
  return TableBuilder(dict, "B")
      .Columns({"Name", "Age"})
      .Row({"Smith", "27"})
      .Row({"Brown", "24"})
      .Row({"Wang", "32"})
      .Build();
}

// Table C: the misleading table — claims everyone is Male, contradicting
// the source (Wang is Female; Smith's gender is unknown).
inline Table PaperTableC(const DictionaryPtr& dict) {
  return TableBuilder(dict, "C")
      .Columns({"Name", "Gender"})
      .Row({"Smith", "Male"})
      .Row({"Brown", "Male"})
      .Row({"Wang", "Male"})
      .Build();
}

// Table D: correct gender values for Brown and Wang, no key column.
inline Table PaperTableD(const DictionaryPtr& dict) {
  return TableBuilder(dict, "D")
      .Columns({"Name", "Gender"})
      .Row({"Brown", "Male"})
      .Row({"Wang", "Female"})
      .Build();
}

// Reclaimed candidate Ŝ1 of Example 6 (Fig. 4 top): contains an erroneous
// Male for Smith and a split Wang tuple.
inline Table PaperReclaimedS1(const DictionaryPtr& dict) {
  return TableBuilder(dict, "S1")
      .Columns({"ID", "Name", "Age", "Gender", "Education Level"})
      .Row({"0", "Smith", "27", "Male", "Bachelors"})
      .Row({"1", "Brown", "24", "Male", "Masters"})
      .Row({"2", "Wang", "32", "Female", ""})
      .Row({"2", "Wang", "32", "Male", "High School"})
      .Build();
}

// Reclaimed candidate Ŝ2 of Example 6 (Fig. 4 bottom): nullified values
// but no erroneous ones.
inline Table PaperReclaimedS2(const DictionaryPtr& dict) {
  return TableBuilder(dict, "S2")
      .Columns({"ID", "Name", "Age", "Gender", "Education Level"})
      .Row({"0", "Smith", "", "", "Bachelors"})
      .Row({"1", "Brown", "24", "Male", "Masters"})
      .Row({"2", "Wang", "32", "Female", ""})
      .Build();
}

}  // namespace gent::testing

#endif  // GENT_TESTS_PAPER_FIXTURES_H_
