// Deadline-aware admission tests for ReclaimService (DESIGN.md §5.9):
// priority ordering, kShedOldest under saturation, per-class queue
// caps, dead-on-arrival deadline rejection, cooperative mid-flight
// interruption at every pipeline stage, the Cancel()==true ⇒ Cancelled
// guarantee, discovery-cache poisoning immunity, snapshot fault
// injection (failure atomicity of AddLakeFromSnapshot/
// ReloadLakeFromSnapshot), and a cancel/reload/serve hammer that runs
// under ThreadSanitizer in CI.

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/discovery/discovery.h"
#include "src/engine/reclaim_service.h"
#include "src/lake/snapshot.h"
#include "src/storage/io.h"
#include "src/matrix/expand.h"
#include "src/matrix/traversal.h"
#include "src/table/table_builder.h"

namespace gent {
namespace {

using Clock = std::chrono::steady_clock;

// Fixture: the vertical-fragment scheme of the other service tests.
// Source s splits into frag_a (k,a) and frag_b (k,b). `rows` scales the
// per-source work: tests that need a long-running "blocker" request use
// a few hundred rows so their own bookkeeping (microseconds) fits well
// inside one pipeline execution (milliseconds).

std::vector<std::vector<std::string>> SourceRows(size_t s, size_t rows) {
  const std::string tag = "s" + std::to_string(s) + "_";
  std::vector<std::vector<std::string>> out;
  for (size_t r = 0; r < rows; ++r) {
    out.push_back({tag + "k" + std::to_string(r),
                   tag + "a" + std::to_string(r),
                   tag + "b" + std::to_string(r)});
  }
  return out;
}

Table MakeSource(const DictionaryPtr& dict, size_t s, size_t rows = 10) {
  TableBuilder sb(dict, "source" + std::to_string(s));
  sb.Columns({"k", "a", "b"});
  for (const auto& row : SourceRows(s, rows)) sb.Row(row);
  return sb.Key({"k"}).Build();
}

DataLake MakePairedLake(const DictionaryPtr& dict, size_t begin, size_t end,
                        size_t rows = 10) {
  DataLake lake(dict);
  for (size_t s = begin; s < end; ++s) {
    const std::string tag = "s" + std::to_string(s) + "_";
    const auto srows = SourceRows(s, rows);
    TableBuilder fa(dict, tag + "frag_a");
    fa.Columns({"k", "a"});
    for (const auto& row : srows) fa.Row({row[0], row[1]});
    (void)lake.AddTable(fa.Build());
    TableBuilder fb(dict, tag + "frag_b");
    fb.Columns({"k", "b"});
    for (const auto& row : srows) fb.Row({row[0], row[2]});
    (void)lake.AddTable(fb.Build());
  }
  return lake;
}

std::string TempPath(const std::string& stem) {
  return (std::filesystem::temp_directory_path() /
          (stem + "_" + std::to_string(::getpid()) + ".snap"))
      .string();
}

// Spins until `pred` holds (deadline-bounded). Returns whether it did.
template <typename Pred>
bool SpinUntil(Pred pred, double seconds = 10.0) {
  const auto deadline = Clock::now() + std::chrono::duration<double>(seconds);
  while (!pred()) {
    if (Clock::now() > deadline) return false;
    std::this_thread::yield();
  }
  return true;
}

// A service with one worker, one paired shard, and a long-running
// request already executing (the "blocker"): everything submitted
// afterwards queues behind it deterministically.
struct BusyService {
  DictionaryPtr dict = MakeDictionary();
  DataLake lake;
  std::unique_ptr<ReclaimService> service;
  ReclaimTicket blocker;

  explicit BusyService(ServiceOptions base = {}, size_t blocker_rows = 4000) {
    lake = MakePairedLake(dict, 0, 4, blocker_rows);
    base.dict = dict;
    base.num_threads = 1;
    service = std::make_unique<ReclaimService>(std::move(base));
    EXPECT_TRUE(service->AddLakeView("lake", lake).ok());
    ReclaimRequest request;
    request.lake = "lake";
    auto t = service->SubmitReclaim(MakeSource(dict, 0, blocker_rows),
                                    request);
    EXPECT_TRUE(t.ok());
    blocker = std::move(*t);
    // The blocker has left the queue (= is executing) before we return,
    // so submissions from here on cannot be pumped until it finishes.
    EXPECT_TRUE(SpinUntil(
        [&]() { return service->admission_stats().queued == 0; }));
  }
};

ReclaimRequest Light(RequestPriority priority,
                     double deadline_seconds = 0.0) {
  ReclaimRequest request;
  request.lake = "lake";
  request.priority = priority;
  request.deadline_seconds = deadline_seconds;
  return request;
}

// --- Dead-on-arrival deadline rejection ------------------------------------

TEST(ServiceTailTest, DeadlineExpiredInQueueResolvesTimeoutWithoutRunning) {
  BusyService busy;
  // Deadline far shorter than the blocker: expired by the time the pump
  // reaches the request, so it must resolve Timeout without running.
  auto victim = busy.service->SubmitReclaim(
      MakeSource(busy.dict, 1), Light(RequestPriority::kNormal, 1e-6));
  ASSERT_TRUE(victim.ok());
  EXPECT_EQ(victim->Wait().status().code(), StatusCode::kTimeout);
  const auto stats = busy.service->admission_stats();
  EXPECT_GE(stats.deadline_expired_in_queue, 1u);
  EXPECT_TRUE(busy.blocker.Wait().ok());
}

TEST(ServiceTailTest, GenerousDeadlineStillCompletes) {
  BusyService busy;
  auto ticket = busy.service->SubmitReclaim(
      MakeSource(busy.dict, 1), Light(RequestPriority::kNormal, 60.0));
  ASSERT_TRUE(ticket.ok());
  EXPECT_TRUE(ticket->Wait().ok()) << ticket->Wait().status().ToString();
  EXPECT_EQ(busy.service->admission_stats().deadline_expired_in_queue, 0u);
  EXPECT_TRUE(busy.blocker.Wait().ok());
}

// --- Mid-flight interruption at every pipeline stage ------------------------
//
// Stage-level determinism: a pre-expired deadline (or pre-fired cancel
// token) must abort at the stage's FIRST checkpoint — this is the
// "within one checkpoint" guarantee, tested without racing a clock.

struct StageFixture {
  DictionaryPtr dict = MakeDictionary();
  DataLake lake;
  std::unique_ptr<GenT> gent;
  Table source;

  StageFixture()
      : lake(MakePairedLake(MakeDictionary(), 0, 3)),
        source(Table("empty", MakeDictionary())) {
    dict = lake.dict();
    gent = std::make_unique<GenT>(lake);
    source = MakeSource(dict, 0);
  }
};

TEST(ServiceTailTest, ExpiredDeadlineAbortsEveryStage) {
  StageFixture fx;
  const OpLimits expired = OpLimits::WithDeadline(Clock::now() -
                                                  std::chrono::seconds(1));

  Discovery discovery(fx.gent->catalog(), fx.gent->config().discovery);
  EXPECT_EQ(discovery.FindCandidates(fx.source, expired).status().code(),
            StatusCode::kTimeout);

  auto candidates = discovery.FindCandidates(fx.source);
  ASSERT_TRUE(candidates.ok());
  EXPECT_EQ(Expand(fx.source, *candidates, expired).status().code(),
            StatusCode::kTimeout);

  auto expanded = Expand(fx.source, *candidates);
  ASSERT_TRUE(expanded.ok());
  EXPECT_EQ(
      MatrixTraversal(fx.source, expanded->tables, {}, expired).status().code(),
      StatusCode::kTimeout);

  EXPECT_EQ(fx.gent->Reclaim(fx.source, expired).status().code(),
            StatusCode::kTimeout);
}

TEST(ServiceTailTest, FiredCancelTokenAbortsEveryStage) {
  StageFixture fx;
  std::atomic<bool> fired{true};
  OpLimits cancelled;
  cancelled.CancelToken(&fired);

  Discovery discovery(fx.gent->catalog(), fx.gent->config().discovery);
  EXPECT_EQ(discovery.FindCandidates(fx.source, cancelled).status().code(),
            StatusCode::kCancelled);

  auto candidates = discovery.FindCandidates(fx.source);
  ASSERT_TRUE(candidates.ok());
  EXPECT_EQ(Expand(fx.source, *candidates, cancelled).status().code(),
            StatusCode::kCancelled);

  auto expanded = Expand(fx.source, *candidates);
  ASSERT_TRUE(expanded.ok());
  EXPECT_EQ(MatrixTraversal(fx.source, expanded->tables, {}, cancelled)
                .status()
                .code(),
            StatusCode::kCancelled);

  EXPECT_EQ(fx.gent->Reclaim(fx.source, cancelled).status().code(),
            StatusCode::kCancelled);

  // Cancelled outranks Timeout when both conditions hold.
  OpLimits both = OpLimits::WithDeadline(Clock::now() -
                                         std::chrono::seconds(1));
  both.CancelToken(&fired);
  EXPECT_EQ(fx.gent->Reclaim(fx.source, both).status().code(),
            StatusCode::kCancelled);
}

// --- Cancel guarantee through the service -----------------------------------

TEST(ServiceTailTest, CancelAfterExecutionStartResolvesCancelled) {
  BusyService busy;
  // The blocker IS executing (BusyService waited for the queue to
  // drain). Cancel it mid-flight: Cancel()==true now guarantees a
  // kCancelled resolution — the pipeline aborts at its next checkpoint
  // and any completed-but-unpublished result is discarded.
  const bool accepted = busy.blocker.Cancel();
  const auto& result = busy.blocker.Wait();
  if (accepted) {
    EXPECT_EQ(result.status().code(), StatusCode::kCancelled);
    const auto stats = busy.service->admission_stats();
    EXPECT_GE(stats.cancelled_mid_flight + stats.cancelled, 1u);
  } else {
    EXPECT_TRUE(result.ok());
  }
  EXPECT_FALSE(busy.blocker.Cancel());  // already resolved
}

TEST(ServiceTailTest, CancelledColdRequestNeverPoisonsDiscoveryCache) {
  auto dict = MakeDictionary();
  DataLake lake = MakePairedLake(dict, 0, 3, 200);
  ServiceOptions options;
  options.dict = dict;
  options.num_threads = 1;
  options.cache_capacity = 16;
  ReclaimService service(std::move(options));
  ASSERT_TRUE(service.AddLakeView("lake", lake).ok());

  Table source = MakeSource(dict, 0, 200);
  ReclaimRequest request;
  request.lake = "lake";

  // Pristine reference, computed around the cache.
  ReclaimRequest bypass = request;
  bypass.bypass_cache = true;
  auto reference = service.Reclaim(source, bypass);
  ASSERT_TRUE(reference.ok());

  // A cold cache-eligible request, cancelled mid-flight. Whatever the
  // race outcome (aborted before the cache insert, after it, or
  // resolved before the cancel), the cache must never hold a truncated
  // expansion: an interrupted expansion is a hard error at Expand's
  // terminal checkpoint, never an OK result.
  for (int round = 0; round < 8; ++round) {
    auto ticket = service.SubmitReclaim(source.Clone(), request);
    ASSERT_TRUE(ticket.ok());
    SpinUntil([&]() { return service.admission_stats().queued == 0; });
    (void)ticket->Cancel();
    (void)ticket->Wait();

    auto after = service.Reclaim(source, request);  // may hit the cache
    ASSERT_TRUE(after.ok());
    EXPECT_TRUE(TablesBitIdentical(after->reclaimed, reference->reclaimed))
        << "discovery cache poisoned by a cancelled request (round "
        << round << ")";
  }
}

// --- Shed-oldest under saturation -------------------------------------------

TEST(ServiceTailTest, ShedOldestEvictsLowestClassAndNeverHigher) {
  ServiceOptions base;
  base.admission_capacity = 3;
  base.admission_policy = AdmissionPolicy::kShedOldest;
  BusyService busy(std::move(base));

  // Fill the queue: [normal n1, normal n2, batch b1].
  auto n1 = busy.service->SubmitReclaim(MakeSource(busy.dict, 1),
                                        Light(RequestPriority::kNormal));
  auto n2 = busy.service->SubmitReclaim(MakeSource(busy.dict, 2),
                                        Light(RequestPriority::kNormal));
  auto b1 = busy.service->SubmitReclaim(MakeSource(busy.dict, 3),
                                        Light(RequestPriority::kBatch));
  ASSERT_TRUE(n1.ok() && n2.ok() && b1.ok());
  ASSERT_EQ(busy.service->admission_stats().queued, 3u);

  // A normal newcomer sheds the batch entry (lowest class at or below
  // normal), not a normal one.
  auto n3 = busy.service->SubmitReclaim(MakeSource(busy.dict, 1),
                                        Light(RequestPriority::kNormal));
  ASSERT_TRUE(n3.ok());
  EXPECT_EQ(b1->Wait().status().code(), StatusCode::kResourceExhausted);

  // A high newcomer sheds the OLDEST normal entry (no batch left).
  auto h1 = busy.service->SubmitReclaim(MakeSource(busy.dict, 2),
                                        Light(RequestPriority::kHigh));
  ASSERT_TRUE(h1.ok());
  EXPECT_EQ(n1->Wait().status().code(), StatusCode::kResourceExhausted);

  {
    const auto stats = busy.service->admission_stats();
    EXPECT_EQ(stats.shed, 2u);
    EXPECT_EQ(stats.queued, 3u);
    EXPECT_EQ(stats.queue_depth[0], 1u);  // h1
    EXPECT_EQ(stats.queue_depth[1], 2u);  // n2, n3
    EXPECT_EQ(stats.queue_depth[2], 0u);
  }

  // A batch newcomer facing a queue of higher classes is itself shed:
  // SubmitReclaim returns ResourceExhausted and nothing is evicted.
  auto b2 = busy.service->SubmitReclaim(MakeSource(busy.dict, 3),
                                        Light(RequestPriority::kBatch));
  EXPECT_EQ(b2.status().code(), StatusCode::kResourceExhausted);
  {
    const auto stats = busy.service->admission_stats();
    EXPECT_EQ(stats.shed, 2u);
    EXPECT_GE(stats.rejected, 1u);
    EXPECT_EQ(stats.queued, 3u);
  }

  EXPECT_TRUE(busy.blocker.Wait().ok());
  EXPECT_TRUE(n2->Wait().ok());
  EXPECT_TRUE(n3->Wait().ok());
  EXPECT_TRUE(h1->Wait().ok());
}

TEST(ServiceTailTest, PerClassCapShedsWithinTheClass) {
  ServiceOptions base;
  base.admission_policy = AdmissionPolicy::kShedOldest;
  base.priority_capacity[static_cast<size_t>(RequestPriority::kNormal)] = 1;
  BusyService busy(std::move(base));

  auto n1 = busy.service->SubmitReclaim(MakeSource(busy.dict, 1),
                                        Light(RequestPriority::kNormal));
  ASSERT_TRUE(n1.ok());
  // The normal class is at its cap: a second normal sheds the first
  // (shedding a batch entry could not free a normal slot).
  auto b1 = busy.service->SubmitReclaim(MakeSource(busy.dict, 3),
                                        Light(RequestPriority::kBatch));
  ASSERT_TRUE(b1.ok());
  auto n2 = busy.service->SubmitReclaim(MakeSource(busy.dict, 2),
                                        Light(RequestPriority::kNormal));
  ASSERT_TRUE(n2.ok());
  EXPECT_EQ(n1->Wait().status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(busy.service->admission_stats().shed, 1u);

  // Other classes are unaffected by the normal cap.
  auto h1 = busy.service->SubmitReclaim(MakeSource(busy.dict, 1),
                                        Light(RequestPriority::kHigh));
  ASSERT_TRUE(h1.ok());

  EXPECT_TRUE(busy.blocker.Wait().ok());
  EXPECT_TRUE(n2->Wait().ok());
  EXPECT_TRUE(b1->Wait().ok());
  EXPECT_TRUE(h1->Wait().ok());
}

TEST(ServiceTailTest, PerClassCapRejectsUnderKReject) {
  ServiceOptions base;
  base.admission_policy = AdmissionPolicy::kReject;
  base.priority_capacity[static_cast<size_t>(RequestPriority::kBatch)] = 1;
  BusyService busy(std::move(base));

  auto b1 = busy.service->SubmitReclaim(MakeSource(busy.dict, 1),
                                        Light(RequestPriority::kBatch));
  ASSERT_TRUE(b1.ok());
  auto b2 = busy.service->SubmitReclaim(MakeSource(busy.dict, 2),
                                        Light(RequestPriority::kBatch));
  EXPECT_EQ(b2.status().code(), StatusCode::kResourceExhausted);
  EXPECT_GE(busy.service->admission_stats().rejected, 1u);
  // The total queue is not full: a normal request is admitted.
  auto n1 = busy.service->SubmitReclaim(MakeSource(busy.dict, 2),
                                        Light(RequestPriority::kNormal));
  ASSERT_TRUE(n1.ok());

  EXPECT_TRUE(busy.blocker.Wait().ok());
  EXPECT_TRUE(b1->Wait().ok());
  EXPECT_TRUE(n1->Wait().ok());
}

// --- Priority ordering --------------------------------------------------------

TEST(ServiceTailTest, PumpDrainsHighestClassFirstFifoWithin) {
  BusyService busy;
  // Queue in "wrong" order behind the blocker: the pump must still
  // execute high → normal → batch (FIFO within a class).
  auto b1 = busy.service->SubmitReclaim(MakeSource(busy.dict, 1),
                                        Light(RequestPriority::kBatch));
  auto b2 = busy.service->SubmitReclaim(MakeSource(busy.dict, 2),
                                        Light(RequestPriority::kBatch));
  auto n1 = busy.service->SubmitReclaim(MakeSource(busy.dict, 3),
                                        Light(RequestPriority::kNormal));
  auto h1 = busy.service->SubmitReclaim(MakeSource(busy.dict, 1),
                                        Light(RequestPriority::kHigh));
  ASSERT_TRUE(b1.ok() && b2.ok() && n1.ok() && h1.ok());
  {
    const auto stats = busy.service->admission_stats();
    EXPECT_EQ(stats.queue_depth[0], 1u);
    EXPECT_EQ(stats.queue_depth[1], 1u);
    EXPECT_EQ(stats.queue_depth[2], 2u);
  }

  ASSERT_TRUE(h1->Wait().ok());
  ASSERT_TRUE(n1->Wait().ok());
  ASSERT_TRUE(b1->Wait().ok());
  ASSERT_TRUE(b2->Wait().ok());
  // With one worker, completion timestamps reflect execution order.
  EXPECT_LE(h1->completed_at(), n1->completed_at());
  EXPECT_LE(n1->completed_at(), b1->completed_at());
  EXPECT_LE(b1->completed_at(), b2->completed_at());
  EXPECT_TRUE(busy.blocker.Wait().ok());
}

// --- WaitFor / WaitUntil ------------------------------------------------------

TEST(ServiceTailTest, WaitForIsNonConsumingAndHonorsTimeout) {
  BusyService busy;
  auto queued = busy.service->SubmitReclaim(MakeSource(busy.dict, 1),
                                            Light(RequestPriority::kNormal));
  ASSERT_TRUE(queued.ok());
  // Still queued behind the blocker: a short wait must time out.
  EXPECT_FALSE(queued->WaitFor(std::chrono::milliseconds(1)));
  EXPECT_FALSE(queued->WaitUntil(Clock::now()));
  EXPECT_FALSE(queued->ready());

  EXPECT_TRUE(queued->Wait().ok());
  // Resolved: every readiness probe now succeeds without blocking,
  // repeatedly (non-consuming).
  EXPECT_TRUE(queued->WaitFor(std::chrono::seconds(0)));
  EXPECT_TRUE(queued->WaitUntil(Clock::now()));
  EXPECT_TRUE(queued->ready());
  EXPECT_TRUE(queued->WaitFor(std::chrono::seconds(0)));
  EXPECT_GT(queued->completed_at().time_since_epoch().count(), 0);
  EXPECT_TRUE(busy.blocker.Wait().ok());
}

// --- Snapshot fault injection -------------------------------------------------

TEST(ServiceTailTest, ReloadFaultsLeaveRegistryAndServingUntouched) {
  auto dict = MakeDictionary();
  DataLake lake = MakePairedLake(dict, 0, 2);
  ServiceOptions options;
  options.dict = dict;
  options.cache_capacity = 16;
  ReclaimService service(std::move(options));
  ASSERT_TRUE(service.AddLakeView("lake", lake).ok());

  ReclaimRequest request;
  request.lake = "lake";
  Table source = MakeSource(dict, 0);
  auto reference = service.Reclaim(source, request);
  ASSERT_TRUE(reference.ok());
  (void)service.Reclaim(source, request);  // warm the discovery cache
  const auto cache_before = service.cache_stats();
  const uint64_t epoch_before = service.registry_epoch();

  // Fault 1: truncated snapshot (half the bytes of a valid one).
  const std::string valid = TempPath("tail_valid");
  const std::string truncated = TempPath("tail_truncated");
  ASSERT_TRUE(SaveSnapshot(lake, valid).ok());
  {
    std::ifstream in(valid, std::ios::binary);
    std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                            std::istreambuf_iterator<char>());
    ASSERT_GT(bytes.size(), 8u);
    std::ofstream out(truncated, std::ios::binary);
    out.write(bytes.data(),
              static_cast<std::streamsize>(bytes.size() / 2));
  }
  EXPECT_FALSE(service.ReloadLakeFromSnapshot("lake", truncated).ok());

  // Fault 2: garbage bytes.
  const std::string garbage = TempPath("tail_garbage");
  {
    std::ofstream out(garbage, std::ios::binary);
    out << "not a snapshot at all, not even close";
  }
  EXPECT_FALSE(service.ReloadLakeFromSnapshot("lake", garbage).ok());

  // Fault 3: missing file.
  EXPECT_FALSE(
      service.ReloadLakeFromSnapshot("lake", TempPath("tail_missing")).ok());

  // Failure atomicity: no epoch bump, same shard set, the old shard
  // keeps serving bit-identically, and warm cache entries survived
  // (a failed reload must not invalidate anything).
  EXPECT_EQ(service.registry_epoch(), epoch_before);
  EXPECT_EQ(service.num_lakes(), 1u);
  EXPECT_EQ(service.lake_names(), std::vector<std::string>{"lake"});
  auto after = service.Reclaim(source, request);
  ASSERT_TRUE(after.ok());
  EXPECT_TRUE(TablesBitIdentical(after->reclaimed, reference->reclaimed));
  EXPECT_GT(service.cache_stats().hits, cache_before.hits);

  // AddLakeFromSnapshot has the same atomicity: a failed add leaves the
  // registry untouched (no phantom shard, no epoch bump).
  EXPECT_FALSE(service.AddLakeFromSnapshot("fresh", truncated).ok());
  EXPECT_FALSE(service.AddLakeFromSnapshot("fresh", garbage).ok());
  EXPECT_EQ(service.registry_epoch(), epoch_before);
  EXPECT_EQ(service.num_lakes(), 1u);

  // A valid snapshot still works after the faults (nothing latched).
  EXPECT_TRUE(service.ReloadLakeFromSnapshot("lake", valid).ok());
  EXPECT_EQ(service.registry_epoch(), epoch_before + 1);
  auto reloaded = service.Reclaim(source, request);
  ASSERT_TRUE(reloaded.ok());
  EXPECT_TRUE(TablesBitIdentical(reloaded->reclaimed, reference->reclaimed));

  std::remove(valid.c_str());
  std::remove(truncated.c_str());
  std::remove(garbage.c_str());
}

TEST(ServiceTailTest, SaveSnapshotSurfacesWriteFailure) {
  // Injected ENOSPC on the first write: SaveSnapshot must fail typed
  // and the commit protocol must leave no file at the destination.
  auto dict = MakeDictionary();
  DataLake lake = MakePairedLake(dict, 0, 2);
  const std::string path = TempPath("tail_enospc");
  {
    io::FaultInjector injector;
    io::FaultPlan plan;
    plan.op_mask = io::OpBit(io::Op::kWrite);
    plan.kind = io::FaultKind::kErrno;
    plan.error_code = ENOSPC;
    injector.Arm(plan);
    io::ScopedFaultInjector scope(&injector);
    EXPECT_FALSE(SaveSnapshot(lake, path).ok());
  }
  EXPECT_FALSE(std::filesystem::exists(path));
}

// --- TSan hammer: cancel / reload / serve concurrently ------------------------

TEST(ServiceTailTest, CancelReloadServeHammer) {
  auto dict = MakeDictionary();
  DataLake lake = MakePairedLake(dict, 0, 4);
  const std::string snapshot = TempPath("tail_hammer");
  ASSERT_TRUE(SaveSnapshot(lake, snapshot).ok());

  ServiceOptions options;
  options.dict = dict;
  options.num_threads = 2;
  options.cache_capacity = 16;
  options.admission_policy = AdmissionPolicy::kBlock;
  ReclaimService service(std::move(options));
  ASSERT_TRUE(service.AddLakeView("lake", lake).ok());

  constexpr int kRounds = 60;
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> accepted_cancels{0};

  // Registry churn for the whole hammer.
  std::thread churn([&]() {
    while (!stop.load(std::memory_order_relaxed)) {
      ASSERT_TRUE(service.ReloadLakeFromSnapshot("lake", snapshot).ok());
      std::this_thread::yield();
    }
  });
  // Synchronous traffic racing the async queue.
  std::thread sync_traffic([&]() {
    ReclaimRequest request;
    request.lake = "lake";
    while (!stop.load(std::memory_order_relaxed)) {
      EXPECT_TRUE(service.Reclaim(MakeSource(dict, 1), request).ok());
    }
  });

  ReclaimRequest request;
  request.lake = "lake";
  for (int round = 0; round < kRounds; ++round) {
    std::vector<ReclaimTicket> tickets;
    for (int i = 0; i < 4; ++i) {
      request.priority = static_cast<RequestPriority>(i % 3);
      request.deadline_seconds = (i % 2 == 0) ? 30.0 : 0.0;
      auto t = service.SubmitReclaim(MakeSource(dict, i % 4), request);
      ASSERT_TRUE(t.ok());
      tickets.push_back(std::move(*t));
    }
    // Cancel every other ticket from a second thread while they run.
    std::thread canceller([&]() {
      for (size_t i = 0; i < tickets.size(); i += 2) {
        if (tickets[i].Cancel()) {
          accepted_cancels.fetch_add(1, std::memory_order_relaxed);
          // The guarantee under fire: an accepted cancel ALWAYS
          // resolves Cancelled.
          EXPECT_EQ(tickets[i].Wait().status().code(),
                    StatusCode::kCancelled);
        }
      }
    });
    for (auto& t : tickets) {
      const auto& result = t.Wait();
      if (!result.ok()) {
        EXPECT_EQ(result.status().code(), StatusCode::kCancelled)
            << result.status().ToString();
      }
    }
    canceller.join();
  }
  stop.store(true, std::memory_order_relaxed);
  churn.join();
  sync_traffic.join();

  const auto stats = service.admission_stats();
  EXPECT_EQ(stats.cancelled + stats.cancelled_mid_flight,
            accepted_cancels.load());
  EXPECT_EQ(stats.queued, 0u);
  std::remove(snapshot.c_str());
}

}  // namespace
}  // namespace gent
