// Randomized parity: the bit-packed two-plane alignment matrices must
// reproduce the reference int8 semantics (tests/matrix_reference.h — the
// pre-rewrite implementation, kept as the oracle) EXACTLY: CombineRows
// contradiction/merge outcomes, alternative lists, similarity scores
// (bitwise-equal doubles), and full MatrixTraversal results, in both the
// three-valued and the binary-ablation encoding, at any thread count.

#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "matrix_reference.h"
#include "src/matrix/alignment_matrix.h"
#include "src/matrix/traversal.h"
#include "src/table/table_builder.h"
#include "src/util/random.h"

namespace gent {
namespace {

// Exact double equality, diagnosed in bits.
#define EXPECT_SAME_BITS(a, b)                                         \
  do {                                                                 \
    double _x = (a), _y = (b);                                         \
    uint64_t _xb, _yb;                                                 \
    std::memcpy(&_xb, &_x, 8);                                         \
    std::memcpy(&_yb, &_y, 8);                                         \
    EXPECT_EQ(_xb, _yb) << "doubles differ: " << _x << " vs " << _y;   \
  } while (false)

TruthRow RandomRow(Rng& rng, size_t cols, bool three_valued) {
  TruthRow row(cols);
  for (size_t c = 0; c < cols; ++c) {
    double p = rng.NextDouble();
    row[c] = p < 0.45 ? 1 : p < 0.8 ? 0 : (three_valued ? -1 : 0);
  }
  return row;
}

class ParitySweep : public ::testing::TestWithParam<int> {};

TEST_P(ParitySweep, CombineRowsMatchesReference) {
  Rng rng(GetParam() * 9176 + 5);
  for (int trial = 0; trial < 200; ++trial) {
    // Cross word boundaries: up to 70 columns spans two planes words.
    size_t cols = 1 + rng.Index(70);
    bool three = rng.Bernoulli(0.8);
    TruthRow a = RandomRow(rng, cols, three);
    TruthRow b = RandomRow(rng, cols, three);
    TruthRow merged, ref_merged;
    bool ok = CombineRows(a, b, &merged);
    bool ref_ok = ref::RefCombineRows(a, b, &ref_merged);
    ASSERT_EQ(ok, ref_ok) << "contradiction verdicts diverge, trial "
                          << trial;
    if (ok) {
      ASSERT_EQ(merged, ref_merged) << "merged rows diverge, trial " << trial;
    }
  }
}

// A seeded source + candidate pair sharing key values, with nulls,
// contradictions, duplicate candidate keys (multiple alternatives per
// source row), and unmatched keys.
struct TablePair {
  DictionaryPtr dict = MakeDictionary();
  std::unique_ptr<Table> source;
  std::unique_ptr<Table> candidate;
};

TablePair MakePair(Rng& rng) {
  TablePair out;
  size_t rows = 4 + rng.Index(20);
  size_t cols = 2 + rng.Index(8);
  std::vector<std::string> names;
  names.push_back("k");
  for (size_t c = 1; c < cols; ++c) names.push_back("c" + std::to_string(c));

  TableBuilder sb(out.dict, "source");
  sb.Columns(names);
  std::vector<std::vector<std::string>> data;
  for (size_t r = 0; r < rows; ++r) {
    std::vector<std::string> row;
    row.push_back("key" + std::to_string(r));
    for (size_t c = 1; c < cols; ++c) {
      row.push_back(rng.Bernoulli(0.1) ? ""
                                       : "v" + std::to_string(rng.Index(9)));
    }
    data.push_back(row);
    sb.Row(row);
  }
  out.source = std::make_unique<Table>(sb.Key({"k"}).Build());

  TableBuilder cb(out.dict, "cand");
  cb.Columns(names);
  size_t cand_rows = 2 + rng.Index(2 * rows);
  for (size_t r = 0; r < cand_rows; ++r) {
    std::vector<std::string> row;
    // Mix of aligned keys (possibly duplicated), misses, and nulls.
    double p = rng.NextDouble();
    if (p < 0.7) {
      row.push_back("key" + std::to_string(rng.Index(rows)));
    } else if (p < 0.9) {
      row.push_back("ghost" + std::to_string(rng.Index(5)));
    } else {
      row.push_back("");
    }
    for (size_t c = 1; c < cols; ++c) {
      double q = rng.NextDouble();
      if (q < 0.3) {
        row.push_back("");  // nullified
      } else if (q < 0.7) {
        size_t src = rng.Index(rows);
        row.push_back(data[src][c]);  // often a match
      } else {
        row.push_back("w" + std::to_string(rng.Index(9)));  // contradiction
      }
    }
    cb.Row(row);
  }
  out.candidate = std::make_unique<Table>(cb.Build());
  return out;
}

TEST_P(ParitySweep, InitializeAndEvaluateMatchReference) {
  Rng rng(GetParam() * 7451 + 11);
  for (int trial = 0; trial < 20; ++trial) {
    TablePair tp = MakePair(rng);
    for (bool three : {true, false}) {
      MatrixOptions options;
      options.three_valued = three;
      auto m = InitializeMatrix(*tp.source, *tp.candidate, options);
      auto ref = ref::RefInitializeMatrix(*tp.source, *tp.candidate, options);
      ASSERT_EQ(m.ok(), ref.ok());
      if (!m.ok()) continue;
      ASSERT_EQ(m->TotalAlternatives(), ref->TotalAlternatives());
      for (size_t r = 0; r < m->num_source_rows(); ++r) {
        ASSERT_EQ(m->num_alternatives(r), ref->alternatives(r).size());
        for (size_t k = 0; k < m->num_alternatives(r); ++k) {
          ASSERT_EQ(m->Unpack(r, k), ref->alternatives(r)[k])
              << "row " << r << " alt " << k << " three=" << three;
        }
      }
      EXPECT_SAME_BITS(EvaluateMatrixSimilarity(*m, *tp.source),
                       ref::RefEvaluateMatrixSimilarity(*ref, *tp.source));
    }
  }
}

TEST_P(ParitySweep, CombineMatricesMatchesReference) {
  Rng rng(GetParam() * 3313 + 29);
  for (int trial = 0; trial < 12; ++trial) {
    TablePair tp = MakePair(rng);
    auto m1 = InitializeMatrix(*tp.source, *tp.candidate);
    ASSERT_TRUE(m1.ok());
    auto r1 = ref::RefInitializeMatrix(*tp.source, *tp.candidate);
    ASSERT_TRUE(r1.ok());
    // Build a second, different matrix over the same source from a
    // perturbed candidate (drop rows).
    Table cand2 = tp.candidate->Clone();
    if (cand2.num_rows() > 2) {
      cand2.RemoveRows({0, cand2.num_rows() / 2});
    }
    auto m2 = InitializeMatrix(*tp.source, cand2);
    auto r2 = ref::RefInitializeMatrix(*tp.source, cand2);
    ASSERT_TRUE(m2.ok());
    AlignmentMatrix combined = CombineMatrices(*m1, *m2);
    ref::RefAlignmentMatrix ref_combined = ref::RefCombineMatrices(*r1, *r2);
    ASSERT_EQ(combined.TotalAlternatives(), ref_combined.TotalAlternatives());
    for (size_t r = 0; r < combined.num_source_rows(); ++r) {
      ASSERT_EQ(combined.num_alternatives(r),
                ref_combined.alternatives(r).size());
      for (size_t k = 0; k < combined.num_alternatives(r); ++k) {
        ASSERT_EQ(combined.Unpack(r, k), ref_combined.alternatives(r)[k]);
      }
    }
    EXPECT_SAME_BITS(EvaluateMatrixSimilarity(combined, *tp.source),
                     ref::RefEvaluateMatrixSimilarity(ref_combined,
                                                      *tp.source));
  }
}

// Fragment-lake traversal cases in the style of the paper's running
// example: clean fragments, nullified variants, erroneous variants.
struct TraversalCase {
  DictionaryPtr dict = MakeDictionary();
  std::unique_ptr<Table> source;
  std::vector<Table> tables;
};

TraversalCase MakeTraversalCase(uint64_t seed, size_t rows) {
  TraversalCase out;
  Rng rng(seed);
  TableBuilder sb(out.dict, "source");
  sb.Columns({"k", "a", "b", "c", "d"});
  std::vector<std::vector<std::string>> data;
  for (size_t r = 0; r < rows; ++r) {
    std::vector<std::string> row = {
        "key" + std::to_string(r), "av" + std::to_string(rng.Index(15)),
        "bv" + std::to_string(rng.Index(15)),
        "cv" + std::to_string(rng.Index(15)),
        "dv" + std::to_string(rng.Index(15))};
    data.push_back(row);
    sb.Row(row);
  }
  out.source = std::make_unique<Table>(sb.Key({"k"}).Build());

  size_t num_frags = 5 + rng.Index(5);
  for (size_t f = 0; f < num_frags; ++f) {
    // Random column subset (always the key), random noise mode.
    std::vector<size_t> cols = {0};
    for (size_t c = 1; c < 5; ++c) {
      if (rng.Bernoulli(0.6)) cols.push_back(c);
    }
    if (cols.size() == 1) cols.push_back(1 + rng.Index(4));
    std::vector<std::string> names = {"k", "a", "b", "c", "d"};
    std::vector<std::string> frag_names;
    for (size_t c : cols) frag_names.push_back(names[c]);
    TableBuilder fb(out.dict, "frag" + std::to_string(f));
    fb.Columns(frag_names);
    double err = rng.NextDouble() < 0.3 ? 0.5 : 0.0;
    double null_rate = rng.NextDouble() < 0.4 ? 0.4 : 0.0;
    for (const auto& row : data) {
      std::vector<std::string> frag_row;
      for (size_t c : cols) {
        if (c == 0) {
          frag_row.push_back(row[0]);
        } else if (rng.Bernoulli(null_rate)) {
          frag_row.push_back("");
        } else if (rng.Bernoulli(err)) {
          frag_row.push_back("WRONG" + std::to_string(rng.Index(7)));
        } else {
          frag_row.push_back(row[c]);
        }
      }
      fb.Row(frag_row);
    }
    out.tables.push_back(fb.Build());
  }
  return out;
}

TEST_P(ParitySweep, TraversalMatchesReferenceSerial) {
  TraversalCase c = MakeTraversalCase(GetParam() * 104729 + 3, 8);
  for (bool three : {true, false}) {
    for (bool prune : {true, false}) {
      TraversalOptions options;
      options.matrix.three_valued = three;
      options.prune_redundant = prune;
      options.num_threads = 1;
      auto got = MatrixTraversal(*c.source, c.tables, options);
      auto want = ref::RefMatrixTraversal(*c.source, c.tables, options);
      ASSERT_TRUE(got.ok());
      ASSERT_TRUE(want.ok());
      EXPECT_EQ(got->selected, want->selected)
          << "three=" << three << " prune=" << prune;
      EXPECT_SAME_BITS(got->final_score, want->final_score);
    }
  }
}

TEST_P(ParitySweep, TraversalMatchesReferencePooled) {
  // Large enough to clear the parallel-work floor, so this exercises the
  // ThreadPool fan-out paths against the serial oracle.
  TraversalCase c = MakeTraversalCase(GetParam() * 50551 + 17, 400);
  TraversalOptions options;
  options.num_threads = 4;
  auto got = MatrixTraversal(*c.source, c.tables, options);
  auto want = ref::RefMatrixTraversal(*c.source, c.tables, options);
  ASSERT_TRUE(got.ok());
  ASSERT_TRUE(want.ok());
  EXPECT_EQ(got->selected, want->selected);
  EXPECT_SAME_BITS(got->final_score, want->final_score);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParitySweep, ::testing::Range(1, 9));

}  // namespace
}  // namespace gent
