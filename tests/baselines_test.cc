#include <gtest/gtest.h>

#include "paper_fixtures.h"
#include "src/baselines/alite.h"
#include "src/baselines/auto_pipeline.h"
#include "src/baselines/llm_sim.h"
#include "src/baselines/ver.h"
#include "src/metrics/precision_recall.h"
#include "src/ops/join.h"
#include "src/table/table_builder.h"

namespace gent {
namespace {

using testing::PaperSource;
using testing::PaperTableA;
using testing::PaperTableB;
using testing::PaperTableC;
using testing::PaperTableD;

class BaselineTest : public ::testing::Test {
 protected:
  DictionaryPtr dict_ = MakeDictionary();

  std::vector<Table> PaperInputs() {
    return {PaperTableA(dict_), PaperTableB(dict_), PaperTableC(dict_),
            PaperTableD(dict_)};
  }
};

// --- ALITE --------------------------------------------------------------------

TEST_F(BaselineTest, AliteIntegratesEverythingIncludingNoise) {
  Table source = PaperSource(dict_);
  AliteBaseline alite;
  auto out = alite.Run(source, PaperInputs(), OpLimits());
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->column_names(), source.column_names());
  EXPECT_GT(out->num_rows(), 0u);
  // ALITE is not target-driven: table C's wrong "Male" values leak in.
  auto gender = *out->ColumnIndex("Gender");
  auto name = *out->ColumnIndex("Name");
  bool wang_male = false;
  for (size_t r = 0; r < out->num_rows(); ++r) {
    wang_male |= out->CellString(r, name) == "Wang" &&
                 out->CellString(r, gender) == "Male";
  }
  EXPECT_TRUE(wang_male) << out->ToString();
}

TEST_F(BaselineTest, AliteEmptyInputs) {
  Table source = PaperSource(dict_);
  auto out = AliteBaseline().Run(source, {}, OpLimits());
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->num_rows(), 0u);
  EXPECT_EQ(out->column_names(), source.column_names());
}

TEST_F(BaselineTest, AliteHonorsLimits) {
  Table source = PaperSource(dict_);
  OpLimits limits;
  limits.MaxRows(2);
  auto out = AliteBaseline().Run(source, PaperInputs(), limits);
  EXPECT_FALSE(out.ok());
}

TEST_F(BaselineTest, AlitePsKeepsOnlySourceKeyedRows) {
  Table source = PaperSource(dict_);
  Table a = PaperTableA(dict_);
  a.AddRow({dict_->Intern("99"), dict_->Intern("Ghost"),
            dict_->Intern("PhD")});
  auto out = AlitePsBaseline().Run(source, {a}, OpLimits());
  ASSERT_TRUE(out.ok());
  auto name = *out->ColumnIndex("Name");
  for (size_t r = 0; r < out->num_rows(); ++r) {
    EXPECT_NE(out->CellString(r, name), "Ghost");
  }
}

TEST_F(BaselineTest, AlitePsBeatsAliteOnPrecision) {
  // The paper's consistent finding: project/select before FD pays off.
  Table source = PaperSource(dict_);
  auto inputs = PaperInputs();
  // Add a noisy table with many non-source rows.
  TableBuilder noisy(dict_, "noise");
  noisy.Columns({"ID", "Name"});
  for (int i = 10; i < 40; ++i) {
    noisy.Row({std::to_string(i), "Person" + std::to_string(i)});
  }
  inputs.push_back(noisy.Build());
  auto alite = AliteBaseline().Run(source, inputs, OpLimits());
  auto ps = AlitePsBaseline().Run(source, inputs, OpLimits());
  ASSERT_TRUE(alite.ok());
  ASSERT_TRUE(ps.ok());
  EXPECT_GE(ComputePrecisionRecall(source, *ps).precision,
            ComputePrecisionRecall(source, *alite).precision);
}

// --- Auto-Pipeline* ---------------------------------------------------------------

TEST_F(BaselineTest, AutoPipelineFindsJoinPipeline) {
  // Clean split of the source across two joinable tables: the by-target
  // search should reassemble it (near-)perfectly.
  Table source = PaperSource(dict_);
  Table left = TableBuilder(dict_, "left")
                   .Columns({"ID", "Name", "Age"})
                   .Row({"0", "Smith", "27"})
                   .Row({"1", "Brown", "24"})
                   .Row({"2", "Wang", "32"})
                   .Build();
  Table right = TableBuilder(dict_, "right")
                    .Columns({"ID", "Gender", "Education Level"})
                    .Row({"0", "", "Bachelors"})
                    .Row({"1", "Male", "Masters"})
                    .Row({"2", "Female", "High School"})
                    .Build();
  auto out = AutoPipelineBaseline().Run(source, {left, right}, OpLimits());
  ASSERT_TRUE(out.ok());
  auto pr = ComputePrecisionRecall(source, *out);
  EXPECT_DOUBLE_EQ(pr.recall, 1.0) << out->ToString();
}

TEST_F(BaselineTest, AutoPipelineEmptyInputs) {
  Table source = PaperSource(dict_);
  auto out = AutoPipelineBaseline().Run(source, {}, OpLimits());
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->num_rows(), 0u);
}

TEST_F(BaselineTest, AutoPipelineRespectsBeamConfig) {
  AutoPipelineConfig cfg;
  cfg.beam_width = 1;
  cfg.max_steps = 1;
  Table source = PaperSource(dict_);
  auto out = AutoPipelineBaseline(cfg).Run(source, PaperInputs(), OpLimits());
  EXPECT_TRUE(out.ok());
}

// --- Ver* ----------------------------------------------------------------------

TEST_F(BaselineTest, VerReturnsContainingViews) {
  // Ver's goal: views that contain the source tuples plus extras.
  Table source = PaperSource(dict_);
  Table wide = TableBuilder(dict_, "wide")
                   .Columns({"ID", "Name", "Age", "Gender",
                             "Education Level"})
                   .Row({"0", "Smith", "27", "", "Bachelors"})
                   .Row({"1", "Brown", "24", "Male", "Masters"})
                   .Row({"2", "Wang", "32", "Female", "High School"})
                   .Row({"7", "Extra", "99", "Male", "PhD"})
                   .Build();
  auto out = VerBaseline().Run(source, {wide}, OpLimits());
  ASSERT_TRUE(out.ok());
  auto pr = ComputePrecisionRecall(source, *out);
  EXPECT_GT(pr.recall, 0.9);
  EXPECT_LT(pr.precision, 1.0);  // extras hurt precision, as in the paper
}

TEST_F(BaselineTest, VerNeedsSingleColumnKey) {
  Table source = TableBuilder(dict_, "s")
                     .Columns({"a", "b", "v"})
                     .Row({"1", "2", "x"})
                     .Key({"a", "b"})
                     .Build();
  auto out = VerBaseline().Run(source, {source.Clone()}, OpLimits());
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->num_rows(), 0u);  // composite keys: Ver* abstains
}

// --- LLM-sim ---------------------------------------------------------------------

TEST_F(BaselineTest, LlmSimIsDeterministicAndNoisy) {
  Table source = PaperSource(dict_);
  LlmSimBaseline llm;
  auto out1 = llm.Run(source, PaperInputs(), OpLimits());
  auto out2 = llm.Run(source, PaperInputs(), OpLimits());
  ASSERT_TRUE(out1.ok());
  ASSERT_TRUE(out2.ok());
  ASSERT_EQ(out1->num_rows(), out2->num_rows());
  for (size_t r = 0; r < out1->num_rows(); ++r) {
    for (size_t c = 0; c < out1->num_cols(); ++c) {
      EXPECT_EQ(out1->cell(r, c), out2->cell(r, c));
    }
  }
}

TEST_F(BaselineTest, LlmSimRecallRoughlyCalibrated) {
  // On a larger source, tuple recall should land near the configured
  // rate (the paper's ChatGPT measured 0.239).
  TableBuilder b(dict_, "s");
  b.Columns({"k", "a", "b"});
  for (int i = 0; i < 200; ++i) {
    b.Row({std::to_string(i), "a" + std::to_string(i),
           "b" + std::to_string(i)});
  }
  Table source = b.Key({"k"}).Build();
  LlmSimConfig cfg;
  cfg.tuple_recall = 0.3;
  auto out = LlmSimBaseline(cfg).Run(source, {source.Clone()}, OpLimits());
  ASSERT_TRUE(out.ok());
  auto pr = ComputePrecisionRecall(source, *out);
  EXPECT_GT(pr.recall, 0.05);
  EXPECT_LT(pr.recall, 0.35);
  EXPECT_LT(pr.precision, 0.6);  // hallucinations + fabricated rows
}

}  // namespace
}  // namespace gent
