// Randomized deep SPJU trees: the strongest executable form of
// Theorem 8. A recursive generator builds query trees up to depth 3 over
// random minimal-form base tables; every tree must evaluate identically
// under the native operators and the {⊎, σ, π, κ, β} rewrite.
//
// Tree grammar (matches the paper's query shapes — unions of SPJ
// chunks): join operands are base tables, selections thereof, or other
// join results; projections and unions stack above the join layer.
//
// Comparison is *up to minimal form*. The per-lemma tests (spju_test.cc)
// assert strict relation equality on minimal-form inputs; a deep
// composition, however, lets native operators carry non-minimal
// intermediates (an outer join null-pads a row that a later step could
// subsume) while the rewrite's eager κ/β reduce them — the two sides
// then agree only on their canonical forms. That is exactly the
// equivalence class integration works in: Algorithm 2 re-reduces to
// minimal form after every step. The canonical form used here is
// deterministic: the maximal elements (β) of the complementation
// closure (κ*), deduplicated.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/ops/fusion.h"
#include "src/ops/spju.h"
#include "src/ops/unary.h"
#include "src/table/table_builder.h"
#include "src/util/random.h"

namespace gent {
namespace {

// Base tables share column "c" (join key, non-null) and carry one or two
// private columns, so any pair is joinable and any same-schema pair is
// unionable.
struct DeepCase {
  QueryCatalog catalog;
  std::vector<std::string> names;        // base table names
  std::vector<std::string> schemas;      // schema signature per table
};

DeepCase MakeBaseTables(Rng& rng, const DictionaryPtr& dict) {
  DeepCase out;
  const std::vector<std::vector<std::string>> schema_pool = {
      {"c", "a"}, {"c", "b"}, {"c", "a", "b"}, {"c", "d"}};
  for (size_t t = 0; t < 4; ++t) {
    const auto& cols = schema_pool[t % schema_pool.size()];
    TableBuilder builder(dict, "T" + std::to_string(t));
    builder.Columns(cols);
    const size_t rows = 2 + rng.Index(5);
    for (size_t r = 0; r < rows; ++r) {
      std::vector<std::string> row;
      for (size_t c = 0; c < cols.size(); ++c) {
        const bool nullable = c != 0;
        if (nullable && rng.Bernoulli(0.15)) {
          row.push_back("");
        } else {
          row.push_back(cols[c] + std::to_string(rng.Index(3)));
        }
      }
      builder.Row(row);
    }
    auto minimal = TakeMinimalForm(builder.Build());
    EXPECT_TRUE(minimal.ok());
    Table table = std::move(minimal.value());
    std::string signature;
    for (const auto& c : cols) signature += c;
    out.names.push_back(table.name());
    out.schemas.push_back(signature);
    out.catalog.Register(std::move(table));
  }
  return out;
}

// Random tree: at depth 0 a random base; otherwise join / left join /
// full outer / union(same-schema) / σ over subtrees. Returns the query
// and the schema signature it produces (tracked so unions stay legal and
// projections name real columns).
struct GenQuery {
  QueryPtr query;
  std::vector<std::string> columns;
};

std::vector<std::string> MergedColumns(const GenQuery& left,
                                       const GenQuery& right) {
  std::vector<std::string> cols = left.columns;
  for (const auto& c : right.columns) {
    if (std::find(cols.begin(), cols.end(), c) == cols.end()) {
      cols.push_back(c);
    }
  }
  return cols;
}

// SPJ layer: base | σ(SPJ) | SPJ ⋈/⟕/⟗ SPJ. Operands stay in minimal
// form, as the join lemmas require.
GenQuery GenerateSpj(Rng& rng, const DeepCase& base, int depth) {
  if (depth == 0 || rng.Bernoulli(0.3)) {
    const size_t i = rng.Index(base.names.size());
    std::vector<std::string> cols;
    for (char c : base.schemas[i]) cols.push_back(std::string(1, c));
    return {Base(base.names[i]), cols};
  }
  GenQuery left = GenerateSpj(rng, base, depth - 1);
  if (rng.Bernoulli(0.3)) {  // selection on the join key domain
    const std::string literal = "c" + std::to_string(rng.Index(3));
    return {SelectEqQ(left.query, "c", literal), left.columns};
  }
  GenQuery right = GenerateSpj(rng, base, depth - 1);
  QueryPtr q;
  switch (rng.Index(3)) {
    case 0: q = JoinQ(left.query, right.query); break;
    case 1: q = LeftJoinQ(left.query, right.query); break;
    default: q = FullOuterQ(left.query, right.query); break;
  }
  return {q, MergedColumns(left, right)};
}

// Top layer above the joins: SPJ | π(Top) | σ(Top) | Top ∪/⊎ Top.
GenQuery Generate(Rng& rng, const DeepCase& base, int depth) {
  if (depth == 0 || rng.Bernoulli(0.3)) {
    return GenerateSpj(rng, base, 2);
  }
  GenQuery left = Generate(rng, base, depth - 1);
  switch (rng.Index(3)) {
    case 0: {  // union: inner when schemas coincide, outer otherwise
      GenQuery right = Generate(rng, base, depth - 1);
      if (right.columns != left.columns) {
        return {OuterUnionQ(left.query, right.query),
                MergedColumns(left, right)};
      }
      return {UnionQ(left.query, right.query), left.columns};
    }
    case 1: {  // selection
      const std::string literal = "c" + std::to_string(rng.Index(3));
      return {SelectEqQ(left.query, "c", literal), left.columns};
    }
    default: {  // projection onto a subset that keeps "c"
      if (left.columns.size() <= 1) return left;
      std::vector<std::string> kept;
      kept.push_back("c");
      for (const auto& col : left.columns) {
        if (col != "c" && (kept.size() < 2 || rng.Bernoulli(0.5))) {
          kept.push_back(col);
        }
      }
      return {ProjectQ(left.query, kept), kept};
    }
  }
}

// Canonical form: maximal elements of the complementation closure,
// deduplicated. Deterministic (unlike a destructive κ fixpoint, whose
// result depends on merge order).
Table CanonicalForm(const Table& table) {
  auto closed = ComplementationClosure(table);
  EXPECT_TRUE(closed.ok());
  auto reduced = Subsumption(closed.value());
  EXPECT_TRUE(reduced.ok());
  return Distinct(reduced.value());
}

class SpjuDeepSweep : public ::testing::TestWithParam<int> {};

TEST_P(SpjuDeepSweep, DeepTreesAgreeUpToMinimalForm) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 48271 + 101);
  auto dict = MakeDictionary();
  DeepCase base = MakeBaseTables(rng, dict);
  for (int tree = 0; tree < 4; ++tree) {
    GenQuery q = Generate(rng, base, 3);
    auto direct = EvaluateDirect(q.query, base.catalog);
    auto rep = EvaluateRepresentative(q.query, base.catalog);
    ASSERT_TRUE(direct.ok()) << direct.status().ToString() << "\n"
                             << QueryToString(q.query);
    ASSERT_TRUE(rep.ok()) << rep.status().ToString() << "\n"
                          << QueryToString(q.query);
    ASSERT_EQ(direct.value().column_names(), rep.value().column_names())
        << QueryToString(q.query);
    EXPECT_EQ(RowsOf(CanonicalForm(direct.value())),
              RowsOf(CanonicalForm(rep.value())))
        << "tree: " << QueryToString(q.query) << "\nrewrite: "
        << RewriteToString(q.query) << "\ndirect:\n"
        << direct.value().ToString() << "\nrepresentative:\n"
        << rep.value().ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SpjuDeepSweep, ::testing::Range(1, 31));

}  // namespace
}  // namespace gent
