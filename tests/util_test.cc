#include <gtest/gtest.h>

#include <set>

#include "src/util/random.h"
#include "src/util/status.h"
#include "src/util/string_util.h"

namespace gent {
namespace {

// --- Status / Result ------------------------------------------------------

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("missing table");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "missing table");
  EXPECT_EQ(s.ToString(), "NotFound: missing table");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::IOError("x"), Status::IOError("x"));
  EXPECT_FALSE(Status::IOError("x") == Status::IOError("y"));
  EXPECT_FALSE(Status::IOError("x") == Status::Internal("x"));
}

TEST(StatusTest, AllCodesHaveNames) {
  for (auto code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kAlreadyExists, StatusCode::kOutOfRange,
        StatusCode::kIOError, StatusCode::kTimeout, StatusCode::kInternal}) {
    EXPECT_FALSE(StatusCodeName(code).empty());
    EXPECT_NE(StatusCodeName(code), "Unknown");
  }
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::InvalidArgument("bad"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("payload"));
  std::string s = std::move(r).value();
  EXPECT_EQ(s, "payload");
}

Result<int> Doubled(Result<int> in) {
  GENT_ASSIGN_OR_RETURN(int v, in);
  return v * 2;
}

TEST(ResultTest, AssignOrReturnMacro) {
  EXPECT_EQ(Doubled(21).value(), 42);
  EXPECT_EQ(Doubled(Status::Internal("boom")).status().code(),
            StatusCode::kInternal);
}

// --- Rng -------------------------------------------------------------------

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.Next() == b.Next();
  EXPECT_LT(same, 4);
}

TEST(RngTest, UniformStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    int64_t v = rng.Uniform(-5, 17);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 17);
  }
}

TEST(RngTest, UniformSingleton) {
  Rng rng(7);
  EXPECT_EQ(rng.Uniform(3, 3), 3);
}

TEST(RngTest, UniformCoversRange) {
  Rng rng(11);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.Uniform(0, 9));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(9);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, BernoulliRoughlyCalibrated) {
  Rng rng(13);
  int hits = 0;
  for (int i = 0; i < 20000; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
}

TEST(RngTest, SampleIndicesDistinct) {
  Rng rng(17);
  auto sample = rng.SampleIndices(100, 10);
  EXPECT_EQ(sample.size(), 10u);
  std::set<size_t> uniq(sample.begin(), sample.end());
  EXPECT_EQ(uniq.size(), 10u);
  for (size_t v : sample) EXPECT_LT(v, 100u);
}

TEST(RngTest, SampleIndicesKLargerThanN) {
  Rng rng(17);
  auto sample = rng.SampleIndices(5, 50);
  EXPECT_EQ(sample.size(), 5u);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(19);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto orig = v;
  rng.Shuffle(&v);
  std::multiset<int> a(v.begin(), v.end()), b(orig.begin(), orig.end());
  EXPECT_EQ(a, b);
}

TEST(RngTest, AlphaNumLengthAndCharset) {
  Rng rng(23);
  std::string s = rng.AlphaNum(64);
  EXPECT_EQ(s.size(), 64u);
  for (char c : s) {
    EXPECT_TRUE((c >= 'a' && c <= 'z') || (c >= '0' && c <= '9')) << c;
  }
}

TEST(RngTest, ForkIsIndependent) {
  Rng a(31);
  Rng child = a.Fork();
  EXPECT_NE(a.Next(), child.Next());
}

// --- String utilities -------------------------------------------------------

TEST(StringUtilTest, SplitKeepsEmptyFields) {
  auto parts = Split("a,,b", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
}

TEST(StringUtilTest, SplitSingleField) {
  auto parts = Split("abc", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(StringUtilTest, JoinRoundTrips) {
  std::vector<std::string> parts{"x", "y", "z"};
  EXPECT_EQ(Join(parts, ","), "x,y,z");
  EXPECT_EQ(Split(Join(parts, ","), ','), parts);
}

TEST(StringUtilTest, Trim) {
  EXPECT_EQ(Trim("  hi  "), "hi");
  EXPECT_EQ(Trim("hi"), "hi");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim(""), "");
}

TEST(StringUtilTest, ToLower) {
  EXPECT_EQ(ToLower("AbC123"), "abc123");
}

TEST(StringUtilTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("foobar", "foo"));
  EXPECT_FALSE(StartsWith("foobar", "bar"));
  EXPECT_TRUE(EndsWith("foobar", "bar"));
  EXPECT_FALSE(EndsWith("foobar", "foo"));
  EXPECT_TRUE(StartsWith("x", ""));
}

TEST(StringUtilTest, IsNumeric) {
  EXPECT_TRUE(IsNumeric("42"));
  EXPECT_TRUE(IsNumeric("-3.5"));
  EXPECT_TRUE(IsNumeric("1e3"));
  EXPECT_TRUE(IsNumeric(" 7 "));
  EXPECT_FALSE(IsNumeric("abc"));
  EXPECT_FALSE(IsNumeric("4x"));
  EXPECT_FALSE(IsNumeric(""));
  EXPECT_FALSE(IsNumeric("nan"));  // not finite-decimal
}

TEST(StringUtilTest, NormalizeNumericCollapsesSpellings) {
  EXPECT_EQ(NormalizeNumeric("3.10"), NormalizeNumeric("3.1"));
  EXPECT_EQ(NormalizeNumeric("007"), "7");
  EXPECT_EQ(NormalizeNumeric("+5"), "5");
  EXPECT_EQ(NormalizeNumeric("1e2"), "100");
  EXPECT_EQ(NormalizeNumeric("-0"), "0");
}

TEST(StringUtilTest, NormalizeNumericLeavesTextAlone) {
  EXPECT_EQ(NormalizeNumeric("Smith"), "Smith");
  EXPECT_EQ(NormalizeNumeric("12b"), "12b");
}

}  // namespace
}  // namespace gent
