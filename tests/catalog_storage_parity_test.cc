// Backend parity: a ReclaimService whose catalogs are mmap-backed
// (snapshot v2, opened without rebuild) must be bit-identical to one
// whose catalogs are rebuilt in RAM — for Reclaim, ReclaimBatch, and
// stats-prefilter routing, at every thread count. The two backends share
// one dictionary so even ValueIds are comparable.

#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/engine/reclaim_service.h"
#include "src/gent/gent.h"
#include "src/lake/snapshot.h"
#include "src/table/table_builder.h"

namespace gent {
namespace {

class CatalogStorageParityTest : public ::testing::Test {
 protected:
  CatalogStorageParityTest() {
    dir_ = std::filesystem::temp_directory_path() /
           ("gent_parity_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::create_directories(dir_);
  }
  ~CatalogStorageParityTest() override {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }

  std::string Path(const std::string& name) const {
    return (dir_ / name).string();
  }

  // Vertical fragments: source s (k,a,b) splits into s<i>_frag_a and
  // s<i>_frag_b, all in one lake, plus distractor tables with disjoint
  // values so the prefilter has something to prune.
  void BuildFixture(size_t n_sources) {
    lake_ = std::make_unique<DataLake>(dict_);
    for (size_t s = 0; s < n_sources; ++s) {
      const std::string tag = "s" + std::to_string(s) + "_";
      TableBuilder sb(dict_, "source" + std::to_string(s));
      sb.Columns({"k", "a", "b"});
      TableBuilder fa(dict_, tag + "frag_a");
      fa.Columns({"k", "a"});
      TableBuilder fb(dict_, tag + "frag_b");
      fb.Columns({"k", "b"});
      for (size_t r = 0; r < 12; ++r) {
        const std::string k = tag + "k" + std::to_string(r);
        const std::string a = tag + "a" + std::to_string(r % 7);
        const std::string b = tag + "b" + std::to_string(r);
        sb.Row({k, a, b});
        fa.Row({k, a});
        fb.Row({k, b});
      }
      sources_.push_back(sb.Key({"k"}).Build());
      ASSERT_TRUE(lake_->AddTable(fa.Build()).ok());
      ASSERT_TRUE(lake_->AddTable(fb.Build()).ok());
    }
    TableBuilder noise(dict_, "disjoint_noise");
    noise.Columns({"x", "y"});
    for (size_t r = 0; r < 50; ++r) {
      noise.Row({"nx" + std::to_string(r), "ny" + std::to_string(r)});
    }
    ASSERT_TRUE(lake_->AddTable(noise.Build()).ok());
  }

  // Saves the fixture lake as a v2 snapshot (built catalog included).
  std::string SaveV2(const std::string& name) {
    GenT gent(*lake_);
    const std::string path = Path(name);
    EXPECT_TRUE(
        SaveSnapshotV2(*lake_, gent.catalog().section_views(), path).ok());
    return path;
  }

  // A service over the snapshot with the requested backend. Both share
  // dict_ — the snapshot was saved from dict_, so the remap is identity
  // and the mapped open is eligible.
  std::unique_ptr<ReclaimService> MakeService(const std::string& snap,
                                              bool mapped,
                                              size_t num_threads) {
    ServiceOptions options;
    options.dict = dict_;
    options.num_threads = num_threads;
    options.cache_capacity = 0;  // no cache: every call exercises the
                                 // catalog read path
    options.storage.map_v2_snapshots = mapped;
    auto service = std::make_unique<ReclaimService>(std::move(options));
    EXPECT_TRUE(service->AddLakeFromSnapshot("lake", snap).ok());
    return service;
  }

  static void ExpectBitIdentical(const Result<ReclamationResult>& ram,
                                 const Result<ReclamationResult>& mapped,
                                 const std::string& context) {
    ASSERT_EQ(ram.ok(), mapped.ok())
        << context << ": " << ram.status().ToString() << " vs "
        << mapped.status().ToString();
    if (!ram.ok()) {
      EXPECT_EQ(ram.status().code(), mapped.status().code()) << context;
      return;
    }
    EXPECT_TRUE(TablesBitIdentical(ram->reclaimed, mapped->reclaimed))
        << context;
    EXPECT_EQ(ram->originating_names, mapped->originating_names) << context;
    EXPECT_DOUBLE_EQ(ram->predicted_eis, mapped->predicted_eis) << context;
  }

  DictionaryPtr dict_ = MakeDictionary();
  std::unique_ptr<DataLake> lake_;
  std::vector<Table> sources_;
  std::filesystem::path dir_;
};

TEST_F(CatalogStorageParityTest, MappedBackendIsActuallyMapped) {
  BuildFixture(4);
  const std::string snap = SaveV2("lake.snap");

  auto ram = MakeService(snap, /*mapped=*/false, 1);
  auto ram_stats = ram->residency_stats();
  ASSERT_EQ(ram_stats.size(), 1u);
  EXPECT_FALSE(ram_stats[0].catalog.mapped);
  EXPECT_GT(ram_stats[0].catalog.bytes_total, 0u);

  auto mapped = MakeService(snap, /*mapped=*/true, 1);
  auto stats = mapped->residency_stats();
  ASSERT_EQ(stats.size(), 1u);
  if (!stats[0].catalog.mapped) {
    GTEST_SKIP() << "mmap unavailable; mapped backend fell back to rebuild";
  }
  EXPECT_EQ(stats[0].name, "lake");
  EXPECT_GT(stats[0].catalog.bytes_total, 0u);
  // The hot spine is pinned resident at open; queries fault in more.
  EXPECT_GT(stats[0].catalog.bytes_resident, 0u);
  EXPECT_LE(stats[0].catalog.bytes_resident, stats[0].catalog.bytes_total);

  ReclaimRequest request;
  request.lake = "lake";
  ASSERT_TRUE(mapped->Reclaim(sources_[0], request).ok());
  auto after = mapped->residency_stats();
  EXPECT_GT(after[0].catalog.pool_hits + after[0].catalog.pool_faults,
            stats[0].catalog.pool_hits + stats[0].catalog.pool_faults)
      << "queries should go through the pool's fault-in hook";
}

TEST_F(CatalogStorageParityTest, ReclaimBitIdenticalAcrossBackends) {
  BuildFixture(6);
  const std::string snap = SaveV2("lake.snap");
  auto ram = MakeService(snap, false, 1);
  auto mapped = MakeService(snap, true, 1);
  if (!mapped->residency_stats()[0].catalog.mapped) {
    GTEST_SKIP() << "mmap unavailable; parity is vacuous";
  }
  for (size_t s = 0; s < sources_.size(); ++s) {
    ReclaimRequest request;
    request.lake = "lake";
    ExpectBitIdentical(ram->Reclaim(sources_[s], request),
                       mapped->Reclaim(sources_[s], request),
                       "source " + std::to_string(s));
  }
}

TEST_F(CatalogStorageParityTest, PrefilterRoutingBitIdenticalAcrossBackends) {
  BuildFixture(6);
  const std::string snap = SaveV2("lake.snap");
  auto ram = MakeService(snap, false, 2);
  auto mapped = MakeService(snap, true, 2);
  if (!mapped->residency_stats()[0].catalog.mapped) {
    GTEST_SKIP() << "mmap unavailable; parity is vacuous";
  }
  for (size_t s = 0; s < sources_.size(); ++s) {
    ReclaimRequest request;
    request.policy = RoutingPolicy::kStatsPrefilter;
    ExpectBitIdentical(ram->Reclaim(sources_[s], request),
                       mapped->Reclaim(sources_[s], request),
                       "prefilter source " + std::to_string(s));
  }
  // The prefilter consults SharesAnyValue on the catalog; both backends
  // must prune identically.
  EXPECT_EQ(ram->routing_stats().shards_pruned,
            mapped->routing_stats().shards_pruned);
}

class ParityThreadSweep : public CatalogStorageParityTest,
                          public ::testing::WithParamInterface<size_t> {};

TEST_P(ParityThreadSweep, BatchBitIdenticalAcrossBackendsAndThreads) {
  const size_t threads = GetParam();
  BuildFixture(8);
  const std::string snap = SaveV2("lake.snap");
  auto ram = MakeService(snap, false, threads);
  auto mapped = MakeService(snap, true, threads);
  if (!mapped->residency_stats()[0].catalog.mapped) {
    GTEST_SKIP() << "mmap unavailable; parity is vacuous";
  }
  auto ram_results = ram->ReclaimBatch(sources_);
  auto mapped_results = mapped->ReclaimBatch(sources_);
  ASSERT_EQ(ram_results.size(), mapped_results.size());
  for (size_t i = 0; i < ram_results.size(); ++i) {
    ExpectBitIdentical(ram_results[i], mapped_results[i],
                       std::to_string(threads) + " threads, source " +
                           std::to_string(i));
  }
}

INSTANTIATE_TEST_SUITE_P(Threads, ParityThreadSweep,
                         ::testing::Values(1, 2, 8));

}  // namespace
}  // namespace gent
