#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

#include "src/benchgen/benchmarks.h"
#include "src/benchgen/noise_lake.h"
#include "src/benchgen/query_gen.h"
#include "src/benchgen/tpch.h"
#include "src/benchgen/variants.h"
#include "src/benchgen/web_tables.h"
#include "src/lake/inverted_index.h"
#include "src/table/table_builder.h"

namespace gent {
namespace {

// --- TPC-H generator ------------------------------------------------------------

class TpchTest : public ::testing::Test {
 protected:
  DictionaryPtr dict_ = MakeDictionary();

  std::vector<Table> Generate(double scale = 1.0, uint64_t seed = 7) {
    TpchConfig cfg;
    cfg.scale = scale;
    cfg.seed = seed;
    return GenerateTpch(dict_, cfg);
  }
};

TEST_F(TpchTest, GeneratesAllEightTables) {
  auto tables = Generate();
  ASSERT_EQ(tables.size(), 8u);
  std::set<std::string> names;
  for (const auto& t : tables) names.insert(t.name());
  for (const char* expected :
       {"region", "nation", "supplier", "part", "partsupp", "customer",
        "orders", "lineitem"}) {
    EXPECT_EQ(names.count(expected), 1u) << expected;
  }
}

TEST_F(TpchTest, KeysAreUnique) {
  for (const auto& t : Generate()) {
    ASSERT_TRUE(t.has_key()) << t.name();
    KeyIndex idx = t.BuildKeyIndex();
    EXPECT_EQ(idx.size(), t.num_rows()) << t.name() << " has duplicate keys";
  }
}

TEST_F(TpchTest, ForeignKeysResolve) {
  auto tables = Generate();
  auto find = [&](const std::string& n) -> const Table& {
    for (const auto& t : tables) {
      if (t.name() == n) return t;
    }
    abort();
  };
  auto key_set = [&](const Table& t, const std::string& col) {
    return DistinctColumnValues(t, *t.ColumnIndex(col));
  };
  struct Check {
    const char* child;
    const char* fk;
    const char* parent;
    const char* pk;
  };
  for (const Check& c : std::initializer_list<Check>{
           {"nation", "n_regionkey", "region", "r_regionkey"},
           {"supplier", "s_nationkey", "nation", "n_nationkey"},
           {"customer", "c_nationkey", "nation", "n_nationkey"},
           {"orders", "o_custkey", "customer", "c_custkey"},
           {"lineitem", "l_orderkey", "orders", "o_orderkey"},
           {"lineitem", "l_partkey", "part", "p_partkey"},
           {"lineitem", "l_suppkey", "supplier", "s_suppkey"},
           {"partsupp", "ps_partkey", "part", "p_partkey"},
           {"partsupp", "ps_suppkey", "supplier", "s_suppkey"}}) {
    auto fks = key_set(find(c.child), c.fk);
    auto pks = key_set(find(c.parent), c.pk);
    for (ValueId v : fks) {
      ASSERT_TRUE(pks.count(v) > 0)
          << c.child << "." << c.fk << " dangles into " << c.parent;
    }
  }
}

TEST_F(TpchTest, DeterministicForSeed) {
  auto a = Generate(1.0, 99);
  DictionaryPtr dict2 = MakeDictionary();
  TpchConfig cfg;
  cfg.seed = 99;
  auto b = GenerateTpch(dict2, cfg);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].num_rows(), b[i].num_rows());
    for (size_t r = 0; r < a[i].num_rows(); ++r) {
      for (size_t c = 0; c < a[i].num_cols(); ++c) {
        ASSERT_EQ(a[i].CellString(r, c), b[i].CellString(r, c));
      }
    }
  }
}

TEST_F(TpchTest, ScaleGrowsTables) {
  auto small = Generate(1.0);
  auto big = Generate(4.0, 7);
  auto rows = [](const std::vector<Table>& ts) {
    size_t n = 0;
    for (const auto& t : ts) n += t.num_rows();
    return n;
  };
  EXPECT_GT(rows(big), 3 * rows(small));
}

TEST_F(TpchTest, AverageRowsNearPaperSmall) {
  auto tables = Generate(1.0);
  size_t total = 0;
  for (const auto& t : tables) total += t.num_rows();
  double avg = static_cast<double>(total) / 8.0;
  EXPECT_GT(avg, 600);  // paper: 782
  EXPECT_LT(avg, 1000);
}

// --- Variants ---------------------------------------------------------------------

class VariantTest : public ::testing::Test {
 protected:
  DictionaryPtr dict_ = MakeDictionary();

  Table Original() {
    TableBuilder b(dict_, "orig");
    b.Columns({"k", "a", "b", "c"});
    for (int i = 0; i < 50; ++i) {
      b.Row({std::to_string(i), "a" + std::to_string(i),
             "b" + std::to_string(i), "c" + std::to_string(i)});
    }
    return b.Key({"k"}).Build();
  }

  static size_t CountNulls(const Table& t) {
    size_t n = 0;
    for (size_t c = 0; c < t.num_cols(); ++c) {
      for (ValueId v : t.column(c)) n += v == kNull;
    }
    return n;
  }
};

TEST_F(VariantTest, KeyColumnsNeverDamaged) {
  Rng rng(9);
  Table orig = Original();
  for (auto kind : {VariantKind::kNullified, VariantKind::kErroneous}) {
    auto pair = MakeVariantPair(orig, kind, 0.9, rng);
    for (const auto& v : pair) {
      for (size_t r = 0; r < orig.num_rows(); ++r) {
        ASSERT_EQ(v.cell(r, 0), orig.cell(r, 0)) << v.name();
      }
    }
  }
}

TEST_F(VariantTest, NullifiedPairHasDisjointMasksAtHalf) {
  Rng rng(3);
  auto pair = MakeVariantPair(Original(), VariantKind::kNullified, 0.5, rng);
  ASSERT_EQ(pair.size(), 2u);
  Table orig = Original();
  // Damage targets non-key cells only: 50 rows × 3 non-key cols.
  size_t eligible = orig.num_rows() * (orig.num_cols() - 1);
  EXPECT_EQ(CountNulls(pair[0]), eligible / 2);
  EXPECT_EQ(CountNulls(pair[1]), eligible / 2);
  // Disjoint at 0.5: every cell is intact in at least one variant.
  for (size_t c = 0; c < orig.num_cols(); ++c) {
    for (size_t r = 0; r < orig.num_rows(); ++r) {
      EXPECT_TRUE(pair[0].cell(r, c) != kNull || pair[1].cell(r, c) != kNull)
          << "cell (" << r << "," << c << ") lost in both variants";
    }
  }
}

TEST_F(VariantTest, HighRateForcesOverlap) {
  Rng rng(3);
  auto pair = MakeVariantPair(Original(), VariantKind::kNullified, 0.8, rng);
  Table orig = Original();
  size_t both_lost = 0;
  for (size_t c = 0; c < orig.num_cols(); ++c) {
    for (size_t r = 0; r < orig.num_rows(); ++r) {
      both_lost +=
          pair[0].cell(r, c) == kNull && pair[1].cell(r, c) == kNull;
    }
  }
  // Overlap = 2p − 1 = 60% of the damage-eligible (non-key) cells.
  double eligible = static_cast<double>(orig.num_rows() * (orig.num_cols() - 1));
  EXPECT_NEAR(static_cast<double>(both_lost) / eligible, 0.6, 0.05);
}

TEST_F(VariantTest, ErroneousVariantInjectsNonNullNoise) {
  Rng rng(5);
  auto pair = MakeVariantPair(Original(), VariantKind::kErroneous, 0.5, rng);
  Table orig = Original();
  size_t changed = 0, nulls = 0;
  for (size_t c = 0; c < orig.num_cols(); ++c) {
    for (size_t r = 0; r < orig.num_rows(); ++r) {
      ValueId v = pair[0].cell(r, c);
      changed += v != orig.cell(r, c);
      nulls += v == kNull;
    }
  }
  EXPECT_EQ(nulls, 0u);
  EXPECT_EQ(changed, orig.num_rows() * (orig.num_cols() - 1) / 2);
}

TEST_F(VariantTest, TpTrVariantsMakeFourTables) {
  VariantConfig cfg;
  auto variants = MakeTpTrVariants(Original(), cfg);
  ASSERT_EQ(variants.size(), 4u);
  std::set<std::string> names;
  for (const auto& v : variants) {
    names.insert(v.name());
    EXPECT_FALSE(v.has_key());  // lake tables carry no key constraint
  }
  EXPECT_EQ(names.size(), 4u);
}

// --- Query generator ---------------------------------------------------------------

class QueryGenTest : public ::testing::Test {
 protected:
  DictionaryPtr dict_ = MakeDictionary();
  std::vector<Table> tpch_ = GenerateTpch(dict_, TpchConfig{});
};

TEST_F(QueryGenTest, GeneratesRequestedSources) {
  QueryGenConfig cfg;
  auto specs = GenerateSourceTables(tpch_, cfg);
  ASSERT_TRUE(specs.ok()) << specs.status().ToString();
  EXPECT_EQ(specs->size(), 26u);
}

TEST_F(QueryGenTest, EverySourceHasValidKey) {
  auto specs = GenerateSourceTables(tpch_, QueryGenConfig{});
  ASSERT_TRUE(specs.ok());
  for (const auto& spec : *specs) {
    ASSERT_TRUE(spec.source.has_key()) << spec.description;
    KeyIndex idx = spec.source.BuildKeyIndex();
    EXPECT_EQ(idx.size(), spec.source.num_rows())
        << spec.description << ": key not unique";
  }
}

TEST_F(QueryGenTest, AllThreeQueryClassesPresent) {
  auto specs = GenerateSourceTables(tpch_, QueryGenConfig{});
  ASSERT_TRUE(specs.ok());
  std::set<QueryClass> classes;
  for (const auto& spec : *specs) classes.insert(spec.query_class);
  EXPECT_EQ(classes.size(), 3u);
}

TEST_F(QueryGenTest, RowAndColumnTargetsRespected) {
  QueryGenConfig cfg;
  cfg.target_rows = 27;
  cfg.target_cols = 9;
  auto specs = GenerateSourceTables(tpch_, cfg);
  ASSERT_TRUE(specs.ok());
  for (const auto& spec : *specs) {
    EXPECT_LE(spec.source.num_rows(), 27u) << spec.description;
    EXPECT_GE(spec.source.num_rows(), 5u) << spec.description;
    EXPECT_LE(spec.source.num_cols(), 9u) << spec.description;
  }
}

TEST_F(QueryGenTest, BaseTablesTracked) {
  auto specs = GenerateSourceTables(tpch_, QueryGenConfig{});
  ASSERT_TRUE(specs.ok());
  for (const auto& spec : *specs) {
    EXPECT_FALSE(spec.base_tables.empty());
    size_t expected_min =
        spec.query_class == QueryClass::kProjectSelectUnion ? 1 : 2;
    EXPECT_GE(spec.base_tables.size(), expected_min) << spec.description;
  }
}

TEST_F(QueryGenTest, SourceValuesComeFromOriginals) {
  auto specs = GenerateSourceTables(tpch_, QueryGenConfig{});
  ASSERT_TRUE(specs.ok());
  // All values in a PSU source must exist in its single base table.
  for (const auto& spec : *specs) {
    if (spec.query_class != QueryClass::kProjectSelectUnion) continue;
    const Table* base = nullptr;
    for (const auto& t : tpch_) {
      if (t.name() == spec.base_tables[0]) base = &t;
    }
    ASSERT_NE(base, nullptr);
    std::unordered_set<ValueId> base_values;
    for (size_t c = 0; c < base->num_cols(); ++c) {
      for (ValueId v : base->column(c)) base_values.insert(v);
    }
    for (size_t c = 0; c < spec.source.num_cols(); ++c) {
      for (ValueId v : spec.source.column(c)) {
        EXPECT_TRUE(v == kNull || base_values.count(v) > 0);
      }
    }
  }
}

// --- Web corpus ----------------------------------------------------------------------

TEST(WebCorpusTest, GeneratesRequestedShape) {
  auto dict = MakeDictionary();
  WebCorpusConfig cfg;
  cfg.num_tables = 80;
  auto corpus = GenerateWebCorpus(dict, cfg);
  EXPECT_EQ(corpus.tables.size(), 80u);
  EXPECT_EQ(corpus.duplicate_tables.size(), 12u);  // 6 pairs
  EXPECT_EQ(corpus.partitioned_bases.size(), 3u);
  for (const auto& t : corpus.tables) {
    EXPECT_TRUE(t.has_key()) << t.name();
    EXPECT_GE(t.num_cols(), 2u) << t.name();
  }
}

TEST(WebCorpusTest, DuplicatePairsAreIdentical) {
  auto dict = MakeDictionary();
  WebCorpusConfig cfg;
  cfg.num_tables = 60;
  auto corpus = GenerateWebCorpus(dict, cfg);
  auto find = [&](const std::string& n) -> const Table* {
    for (const auto& t : corpus.tables) {
      if (t.name() == n) return &t;
    }
    return nullptr;
  };
  for (size_t i = 0; i < corpus.duplicate_tables.size(); i += 2) {
    const Table* a = find(corpus.duplicate_tables[i]);
    const Table* b = find(corpus.duplicate_tables[i + 1]);
    ASSERT_NE(a, nullptr);
    ASSERT_NE(b, nullptr);
    ASSERT_EQ(a->num_rows(), b->num_rows());
    ASSERT_EQ(a->num_cols(), b->num_cols());
    for (size_t r = 0; r < a->num_rows(); ++r) {
      for (size_t c = 0; c < a->num_cols(); ++c) {
        ASSERT_EQ(a->cell(r, c), b->cell(r, c));
      }
    }
  }
}

TEST(WebCorpusTest, PartitionsCoverTheBase) {
  auto dict = MakeDictionary();
  WebCorpusConfig cfg;
  cfg.num_tables = 60;
  auto corpus = GenerateWebCorpus(dict, cfg);
  // Every value of a base table appears in some partition table.
  for (const auto& base_name : corpus.partitioned_bases) {
    const Table* base = nullptr;
    std::vector<const Table*> parts;
    std::string prefix =
        "t2d_part_" + base_name.substr(std::string("t2d_base_").size());
    for (const auto& t : corpus.tables) {
      if (t.name() == base_name) base = &t;
      if (t.name().rfind(prefix, 0) == 0) parts.push_back(&t);
    }
    ASSERT_NE(base, nullptr);
    ASSERT_GE(parts.size(), 4u);
    std::unordered_set<ValueId> part_values;
    for (const Table* p : parts) {
      for (size_t c = 0; c < p->num_cols(); ++c) {
        for (ValueId v : p->column(c)) part_values.insert(v);
      }
    }
    for (size_t c = 0; c < base->num_cols(); ++c) {
      for (ValueId v : base->column(c)) {
        ASSERT_TRUE(v == kNull || part_values.count(v) > 0);
      }
    }
  }
}

TEST(WdcSampleTest, SmallTables) {
  auto dict = MakeDictionary();
  WdcConfig cfg;
  cfg.num_tables = 100;
  auto tables = GenerateWdcSample(dict, cfg);
  EXPECT_EQ(tables.size(), 100u);
  size_t total_rows = 0;
  for (const auto& t : tables) total_rows += t.num_rows();
  double avg = static_cast<double>(total_rows) / 100.0;
  EXPECT_GT(avg, 4);
  EXPECT_LT(avg, 30);
}

// --- Noise lake ------------------------------------------------------------------------

TEST(NoiseLakeTest, SliceDistractorsShareValues) {
  auto dict = MakeDictionary();
  auto tpch = GenerateTpch(dict, TpchConfig{});
  NoiseLakeConfig cfg;
  cfg.num_tables = 50;
  cfg.slice_fraction = 1.0;  // all distractors copy slices
  auto noise = GenerateNoiseLake(dict, tpch, cfg);
  ASSERT_EQ(noise.size(), 50u);
  std::unordered_set<ValueId> tpch_values;
  for (const auto& t : tpch) {
    for (size_t c = 0; c < t.num_cols(); ++c) {
      for (ValueId v : t.column(c)) tpch_values.insert(v);
    }
  }
  size_t sharing = 0;
  for (const auto& t : noise) {
    bool shares = false;
    for (size_t c = 0; c < t.num_cols() && !shares; ++c) {
      for (ValueId v : t.column(c)) {
        if (v != kNull && tpch_values.count(v) > 0) {
          shares = true;
          break;
        }
      }
    }
    sharing += shares;
  }
  EXPECT_GT(sharing, 45u);
}

// --- Benchmark assembly --------------------------------------------------------------------

TEST(BenchmarkTest, TpTrSmallShape) {
  auto bench = MakeTpTrBenchmark("tp-tr-small", TpTrSmallConfig());
  ASSERT_TRUE(bench.ok()) << bench.status().ToString();
  EXPECT_EQ(bench->lake->size(), 32u);  // 8 tables × 4 variants
  EXPECT_EQ(bench->sources.size(), 26u);
  EXPECT_EQ(bench->integrating_sets.size(), 26u);
  for (const auto& set : bench->integrating_sets) {
    for (const auto& name : set) {
      EXPECT_TRUE(bench->lake->IndexOf(name).ok()) << name;
    }
  }
}

TEST(BenchmarkTest, EmbeddingAddsNoise) {
  auto base = MakeTpTrBenchmark("tp-tr-small", TpTrSmallConfig());
  ASSERT_TRUE(base.ok());
  auto embedded = EmbedInNoiseLake(*base, 100, 5);
  ASSERT_TRUE(embedded.ok()) << embedded.status().ToString();
  EXPECT_EQ(embedded->lake->size(), 132u);
  EXPECT_EQ(embedded->sources.size(), 26u);
}

TEST(BenchmarkTest, WebBenchmarkShape) {
  WebBenchConfig cfg;
  cfg.t2d_tables = 80;
  cfg.wdc_tables = 120;
  auto bench = MakeWebBenchmark("web", cfg);
  ASSERT_TRUE(bench.ok()) << bench.status().ToString();
  EXPECT_EQ(bench->lake->size(), 200u);
  EXPECT_EQ(bench->source_indices.size(), 80u);
}

}  // namespace
}  // namespace gent
