// Focused tests of Expand (Algorithm 5) behaviours added during
// reproduction: keyness-weighted join pairs, alternative-path scoring,
// hop-family unions, and post-expansion mapping verification.

#include <gtest/gtest.h>

#include "src/matrix/expand.h"
#include "src/table/table_builder.h"

namespace gent {
namespace {

class ExpandTest : public ::testing::Test {
 protected:
  DictionaryPtr dict_ = MakeDictionary();

  Candidate MakeCandidate(Table t, bool covers_key) {
    Candidate c(std::move(t));
    c.covers_key = covers_key;
    return c;
  }
};

TEST_F(ExpandTest, PrefersFunctionalJoinOverManyToMany) {
  // Source keyed on id; the keyless candidate can reach a key-covering
  // table either via a proper FK (unique ref values) or via a 2-value
  // "category" column shared with a decoy. Keyness must pick the FK.
  TableBuilder sb(dict_, "source");
  sb.Columns({"id", "attr", "extra"});
  for (int i = 0; i < 20; ++i) {
    sb.Row({"id" + std::to_string(i), "attr" + std::to_string(i),
            "x" + std::to_string(i)});
  }
  Table source = sb.Key({"id"}).Build();

  // Key-covering candidate: id + ref (unique per row).
  TableBuilder kb(dict_, "keyed");
  kb.Columns({"id", "ref"});
  for (int i = 0; i < 20; ++i) {
    kb.Row({"id" + std::to_string(i), "r" + std::to_string(i)});
  }
  // Keyless candidate holding the attr values, joinable on ref.
  TableBuilder ab(dict_, "attrs");
  ab.Columns({"ref", "attr", "category"});
  for (int i = 0; i < 20; ++i) {
    ab.Row({"r" + std::to_string(i), "attr" + std::to_string(i),
            i % 2 == 0 ? "even" : "odd"});
  }
  // Decoy also key-covering but sharing only the 2-value category.
  TableBuilder db(dict_, "decoy");
  db.Columns({"id", "category"});
  for (int i = 0; i < 20; ++i) {
    db.Row({"id" + std::to_string(i), i % 2 == 0 ? "odd" : "even"});
  }

  std::vector<Candidate> candidates;
  candidates.push_back(MakeCandidate(kb.Build(), true));
  candidates.push_back(MakeCandidate(ab.Build(), false));
  candidates.push_back(MakeCandidate(db.Build(), true));

  auto r = Expand(source, candidates);
  ASSERT_TRUE(r.ok());
  // The attrs candidate must be expanded through `keyed` on ref (giving
  // each attr its true id), not fanned out through the category decoy.
  const Table* expanded = nullptr;
  for (const auto& t : r->tables) {
    if (t.name() == "attrs+expanded") expanded = &t;
  }
  ASSERT_NE(expanded, nullptr);
  auto idc = expanded->ColumnIndex("id");
  auto ac = expanded->ColumnIndex("attr");
  ASSERT_TRUE(idc.has_value());
  ASSERT_TRUE(ac.has_value());
  size_t correct = 0;
  for (size_t row = 0; row < expanded->num_rows(); ++row) {
    std::string id = expanded->CellString(row, *idc);
    std::string attr = expanded->CellString(row, *ac);
    correct += id.substr(2) == attr.substr(4);  // idN ↔ attrN
  }
  EXPECT_EQ(correct, expanded->num_rows());
  EXPECT_EQ(expanded->num_rows(), 20u);
}

TEST_F(ExpandTest, HopFamilyUnionCoversNullJoinKeys) {
  // Two same-schema keyed variants each missing half the join-key cells:
  // the hop union must still expand all rows of the keyless candidate.
  TableBuilder sb(dict_, "source");
  sb.Columns({"id", "v"});
  for (int i = 0; i < 10; ++i) {
    sb.Row({"id" + std::to_string(i), "v" + std::to_string(i)});
  }
  Table source = sb.Key({"id"}).Build();

  auto keyed_variant = [&](const std::string& name, bool even_nulls) {
    TableBuilder b(dict_, name);
    b.Columns({"id", "ref"});
    for (int i = 0; i < 10; ++i) {
      bool null_here = (i % 2 == 0) == even_nulls;
      b.Row({"id" + std::to_string(i),
             null_here ? "" : "r" + std::to_string(i)});
    }
    return b.Build();
  };
  TableBuilder vb(dict_, "values");
  vb.Columns({"ref", "v"});
  for (int i = 0; i < 10; ++i) {
    vb.Row({"r" + std::to_string(i), "v" + std::to_string(i)});
  }

  std::vector<Candidate> candidates;
  candidates.push_back(MakeCandidate(keyed_variant("k1", true), true));
  candidates.push_back(MakeCandidate(keyed_variant("k2", false), true));
  candidates.push_back(MakeCandidate(vb.Build(), false));

  auto r = Expand(source, candidates);
  ASSERT_TRUE(r.ok());
  const Table* expanded = nullptr;
  for (const auto& t : r->tables) {
    if (t.name() == "values+expanded") expanded = &t;
  }
  ASSERT_NE(expanded, nullptr);
  // All 10 rows reachable despite each variant covering only 5 keys.
  std::unordered_set<ValueId> ids;
  auto idc = *expanded->ColumnIndex("id");
  for (size_t row = 0; row < expanded->num_rows(); ++row) {
    ids.insert(expanded->cell(row, idc));
  }
  EXPECT_EQ(ids.size(), 10u);
}

TEST_F(ExpandTest, MismappedConstantColumnIsUnmapped) {
  // A keyless candidate whose column was (wrongly) renamed to a source
  // column holding a constant: after expansion the aligned values
  // contradict the source, so the column must be neutralized.
  TableBuilder sb(dict_, "source");
  sb.Columns({"id", "flag", "v"});
  for (int i = 0; i < 12; ++i) {
    sb.Row({"id" + std::to_string(i), "0", "v" + std::to_string(i)});
  }
  Table source = sb.Key({"id"}).Build();

  TableBuilder kb(dict_, "keyed");
  kb.Columns({"id", "ref"});
  for (int i = 0; i < 12; ++i) {
    kb.Row({"id" + std::to_string(i), "r" + std::to_string(i)});
  }
  // The keyless candidate's "flag" column actually holds small ints
  // 0..11 — a classic constant-containment mis-mapping.
  TableBuilder bb(dict_, "bad");
  bb.Columns({"ref", "v", "flag"});
  for (int i = 0; i < 12; ++i) {
    bb.Row({"r" + std::to_string(i), "v" + std::to_string(i),
            std::to_string(i)});
  }

  std::vector<Candidate> candidates;
  candidates.push_back(MakeCandidate(kb.Build(), true));
  candidates.push_back(MakeCandidate(bb.Build(), false));

  auto r = Expand(source, candidates);
  ASSERT_TRUE(r.ok());
  const Table* expanded = nullptr;
  for (const auto& t : r->tables) {
    if (t.name() == "bad+expanded") expanded = &t;
  }
  ASSERT_NE(expanded, nullptr);
  // The poisoned flag column must be unmapped (renamed away); v kept.
  EXPECT_FALSE(expanded->HasColumn("flag")) << expanded->ToString();
  EXPECT_TRUE(expanded->HasColumn("v"));
}

TEST_F(ExpandTest, UnreachableCandidateIsDropped) {
  Table source = TableBuilder(dict_, "s")
                     .Columns({"id", "v"})
                     .Row({"a", "1"})
                     .Key({"id"})
                     .Build();
  std::vector<Candidate> candidates;
  candidates.push_back(MakeCandidate(TableBuilder(dict_, "island")
                                         .Columns({"zzz"})
                                         .Row({"qqq"})
                                         .Build(),
                                     false));
  auto r = Expand(source, candidates);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->tables.empty());
  EXPECT_EQ(r->num_dropped, 1u);
}

TEST_F(ExpandTest, KeyCoveringCandidatesPassThroughUnchanged) {
  Table source = TableBuilder(dict_, "s")
                     .Columns({"id", "v"})
                     .Row({"a", "1"})
                     .Key({"id"})
                     .Build();
  std::vector<Candidate> candidates;
  candidates.push_back(MakeCandidate(
      TableBuilder(dict_, "t").Columns({"id", "v"}).Row({"a", "1"}).Build(),
      true));
  auto r = Expand(source, candidates);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->tables.size(), 1u);
  EXPECT_EQ(r->tables[0].name(), "t");
  EXPECT_EQ(r->num_expanded, 0u);
}

}  // namespace
}  // namespace gent
