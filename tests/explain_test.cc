// Tests for reclamation provenance and row explanations (src/explain).

#include "src/explain/provenance.h"

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "src/gent/gent.h"
#include "src/lake/data_lake.h"
#include "src/table/table_builder.h"

namespace gent {
namespace {

// The paper's Fig. 3 instance: source + originating tables A, B, D.
class ExplainFixture : public ::testing::Test {
 protected:
  ExplainFixture() : dict_(MakeDictionary()) {
    source_ = std::make_unique<Table>(
        TableBuilder(dict_, "source")
            .Columns({"ID", "Name", "Age", "Gender", "Education"})
            .Row({"0", "Smith", "27", "", "Bachelors"})
            .Row({"1", "Brown", "24", "Male", "Masters"})
            .Row({"2", "Wang", "32", "Female", "High School"})
            .Key({"ID"})
            .Build());
    // Table A: ID, Name, Education.
    originating_.push_back(TableBuilder(dict_, "A")
                               .Columns({"ID", "Name", "Education"})
                               .Row({"0", "Smith", "Bachelors"})
                               .Row({"1", "Brown", ""})
                               .Row({"2", "Wang", "High School"})
                               .Build());
    // Table B expanded with ID (as Expand() would produce): ID, Name, Age.
    originating_.push_back(TableBuilder(dict_, "B")
                               .Columns({"ID", "Name", "Age"})
                               .Row({"0", "Smith", "27"})
                               .Row({"1", "Brown", "24"})
                               .Row({"2", "Wang", "32"})
                               .Build());
    // Table C: contradicting genders (the paper's misleading table).
    table_c_ = std::make_unique<Table>(TableBuilder(dict_, "C")
                                           .Columns({"ID", "Name", "Gender"})
                                           .Row({"0", "Smith", "Male"})
                                           .Row({"1", "Brown", "Male"})
                                           .Row({"2", "Wang", "Male"})
                                           .Build());
    reclaimed_ = std::make_unique<Table>(
        TableBuilder(dict_, "reclaimed")
            .Columns({"ID", "Name", "Age", "Gender", "Education"})
            .Row({"0", "Smith", "27", "", "Bachelors"})
            .Row({"1", "Brown", "24", "Male", "Masters"})
            .Row({"2", "Wang", "32", "Female", "High School"})
            .Build());
  }

  DictionaryPtr dict_;
  std::unique_ptr<Table> source_;
  std::unique_ptr<Table> table_c_;
  std::vector<Table> originating_;
  std::unique_ptr<Table> reclaimed_;
};

TEST_F(ExplainFixture, WitnessesResolveToContributingTables) {
  // Add a third originating table that also knows Brown's Masters.
  originating_.push_back(TableBuilder(dict_, "D")
                             .Columns({"ID", "Gender", "Education"})
                             .Row({"1", "Male", "Masters"})
                             .Row({"2", "Female", ""})
                             .Build());
  auto result = TraceProvenance(*reclaimed_, *source_, originating_);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  // Cell (0, Education)="Bachelors" witnessed only by A.
  const auto& bachelors = result->witnesses[0][4];
  ASSERT_EQ(bachelors.size(), 1u);
  EXPECT_EQ(originating_[bachelors[0]].name(), "A");
  // Cell (1, Education)="Masters" witnessed only by D (A has null).
  const auto& masters = result->witnesses[1][4];
  ASSERT_EQ(masters.size(), 1u);
  EXPECT_EQ(originating_[masters[0]].name(), "D");
  // Cell (1, Age)="24" witnessed only by B.
  const auto& age = result->witnesses[1][2];
  ASSERT_EQ(age.size(), 1u);
  EXPECT_EQ(originating_[age[0]].name(), "B");
  // Gender of Wang witnessed by D.
  const auto& gender = result->witnesses[2][3];
  ASSERT_EQ(gender.size(), 1u);
  EXPECT_EQ(originating_[gender[0]].name(), "D");
  EXPECT_EQ(result->unexplained_cells, 0u);
}

TEST_F(ExplainFixture, ContributionTotalsAreConsistent) {
  auto result = TraceProvenance(*reclaimed_, *source_, originating_);
  ASSERT_TRUE(result.ok());
  // Every table touches all 3 rows (shared keys 0,1,2).
  size_t total_witnessed = 0;
  for (const TableContribution& c : result->contributions) {
    EXPECT_EQ(c.rows_touched, 3u) << c.name;
    EXPECT_GE(c.cells_witnessed, c.cells_unique) << c.name;
    total_witnessed += c.cells_witnessed;
  }
  // 11 non-null non-key cells: Name×3, Age×3, Gender×2, Education×3.
  // Name is doubly witnessed (A and B: 6), Age by B (3), Education by A
  // for rows 0 and 2 (2; A has null for Brown's Masters). Unwitnessed:
  // both Gender cells and Brown's Masters.
  EXPECT_EQ(result->cells_examined, 11u);
  EXPECT_EQ(result->unexplained_cells, 3u);
  EXPECT_EQ(total_witnessed, 3u * 2 + 3 + 2);
  const std::string summary = result->Summarize();
  EXPECT_NE(summary.find("A:"), std::string::npos);
  EXPECT_NE(summary.find("unexplained"), std::string::npos);
}

TEST_F(ExplainFixture, UnexplainedCellsCounted) {
  // Reclaimed value "99" for Smith's Age exists in no originating table.
  Table tampered = reclaimed_->Clone();
  tampered.set_cell(0, 2, dict_->Intern("99"));
  auto result = TraceProvenance(tampered, *source_, originating_);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->witnesses[0][2].empty());
  EXPECT_GE(result->unexplained_cells, 1u);
}

TEST_F(ExplainFixture, TablesWithoutKeyColumnsAbstain) {
  originating_.push_back(TableBuilder(dict_, "keyless")
                             .Columns({"Name", "Age"})
                             .Row({"Smith", "27"})
                             .Build());
  auto result = TraceProvenance(*reclaimed_, *source_, originating_);
  ASSERT_TRUE(result.ok());
  const TableContribution& keyless = result->contributions.back();
  EXPECT_EQ(keyless.cells_witnessed, 0u);
  EXPECT_EQ(keyless.rows_touched, 0u);
}

TEST_F(ExplainFixture, SchemaAndKeyValidation) {
  Table bad = TableBuilder(dict_, "bad").Columns({"ID"}).Row({"0"}).Build();
  EXPECT_FALSE(TraceProvenance(bad, *source_, originating_).ok());
  Table keyless_source =
      TableBuilder(dict_, "ks").Columns({"a"}).Row({"1"}).Build();
  EXPECT_FALSE(
      TraceProvenance(keyless_source, keyless_source, originating_).ok());
}

TEST_F(ExplainFixture, ExplainRowReportsSupportAndSilence) {
  auto explanation = ExplainSourceRow(*source_, 0, originating_);
  ASSERT_TRUE(explanation.ok()) << explanation.status().ToString();
  EXPECT_TRUE(explanation->key_found);
  EXPECT_EQ(explanation->key, "ID=0");
  // Columns: Name, Age, Gender, Education.
  ASSERT_EQ(explanation->columns.size(), 4u);
  const ColumnEvidence& age = explanation->columns[1];
  EXPECT_EQ(age.column, "Age");
  EXPECT_TRUE(age.supported);
  EXPECT_FALSE(age.contradicted);
  const ColumnEvidence& gender = explanation->columns[2];
  EXPECT_TRUE(gender.observed.empty()) << "no originating table has Gender";
  const std::string rendered = explanation->ToString();
  EXPECT_NE(rendered.find("Age"), std::string::npos);
  EXPECT_NE(rendered.find("supported"), std::string::npos);
}

TEST_F(ExplainFixture, ExplainRowFlagsContradiction) {
  originating_.push_back(table_c_->Clone());
  auto explanation = ExplainSourceRow(*source_, 2, originating_);
  ASSERT_TRUE(explanation.ok());
  // Wang's Gender: source=Female, C says Male → contradicted.
  const ColumnEvidence& gender = explanation->columns[2];
  EXPECT_TRUE(gender.contradicted);
  EXPECT_FALSE(gender.supported);
  EXPECT_NE(explanation->ToString().find("contradicted"), std::string::npos);
}

TEST_F(ExplainFixture, ExplainRowKeyNotFound) {
  Table lone_source = TableBuilder(dict_, "lone")
                          .Columns({"ID", "Name"})
                          .Row({"42", "Nobody"})
                          .Key({"ID"})
                          .Build();
  auto explanation = ExplainSourceRow(lone_source, 0, originating_);
  ASSERT_TRUE(explanation.ok());
  EXPECT_FALSE(explanation->key_found);
  EXPECT_NE(explanation->ToString().find("key not found"), std::string::npos);
}

TEST_F(ExplainFixture, ExplainRowOutOfRange) {
  auto explanation = ExplainSourceRow(*source_, 99, originating_);
  EXPECT_FALSE(explanation.ok());
  EXPECT_EQ(explanation.status().code(), StatusCode::kOutOfRange);
}

TEST_F(ExplainFixture, EndToEndProvenanceOfGenTOutput) {
  // Run the real pipeline on the fixture lake and trace its output.
  DataLake lake(dict_);
  ASSERT_TRUE(lake.AddTable(originating_[0].Clone()).ok());
  ASSERT_TRUE(lake.AddTable(originating_[1].Clone()).ok());
  ASSERT_TRUE(lake.AddTable(table_c_->Clone()).ok());
  GenT gent(lake);
  auto reclamation = gent.Reclaim(*source_);
  ASSERT_TRUE(reclamation.ok()) << reclamation.status().ToString();
  auto provenance = TraceProvenance(reclamation->reclaimed, *source_,
                                    reclamation->originating);
  ASSERT_TRUE(provenance.ok()) << provenance.status().ToString();
  // Every non-null cell of a Gen-T reclamation is witnessed by some
  // originating table: the integration only assembles lake values.
  EXPECT_EQ(provenance->unexplained_cells, 0u)
      << provenance->Summarize();
}

}  // namespace
}  // namespace gent
