#include <gtest/gtest.h>

#include "paper_fixtures.h"
#include "src/integration/integrator.h"
#include "src/ops/unary.h"
#include "src/metrics/precision_recall.h"
#include "src/metrics/similarity.h"
#include "src/ops/join.h"
#include "src/table/table_builder.h"

namespace gent {
namespace {

using testing::PaperSource;
using testing::PaperTableA;
using testing::PaperTableB;
using testing::PaperTableC;
using testing::PaperTableD;

class IntegrationTest : public ::testing::Test {
 protected:
  DictionaryPtr dict_ = MakeDictionary();

  Table WithKey(const Table& t) {
    auto j = NaturalJoin(PaperTableA(dict_), t, JoinKind::kInner);
    return std::move(j).value();
  }
};

TEST_F(IntegrationTest, EmptyInputYieldsEmptySourceSchema) {
  Table source = PaperSource(dict_);
  auto r = IntegrateTables(source, {});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->num_rows(), 0u);
  EXPECT_EQ(r->column_names(), source.column_names());
}

TEST_F(IntegrationTest, SingleTableIsProjectedAndSelected) {
  Table source = PaperSource(dict_);
  Table a = PaperTableA(dict_);
  // Add a junk row (key not in source) and a junk column.
  ASSERT_TRUE(a.AddColumn("junk").ok());
  a.AddRow({dict_->Intern("9"), dict_->Intern("Ghost"),
            dict_->Intern("PhD"), dict_->Intern("x")});
  auto r = IntegrateTables(source, {a});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->column_names(), source.column_names());
  // The ghost row is filtered by the key selection.
  for (size_t row = 0; row < r->num_rows(); ++row) {
    EXPECT_NE(r->CellString(row, 1), "Ghost");
  }
}

TEST_F(IntegrationTest, IntegratesCleanTablesPerfectly) {
  // A ⊎ (A⋈B) ⊎ (A⋈D) + κ/β reclaims every non-null source value; Brown's
  // Masters is genuinely absent from the lake, so that cell stays null.
  Table source = PaperSource(dict_);
  auto r = IntegrateTables(
      source, {PaperTableA(dict_), WithKey(PaperTableB(dict_)),
               WithKey(PaperTableD(dict_))});
  ASSERT_TRUE(r.ok());
  double eis = EisScore(source, *r).value();
  // Only Brown's education (1 of 12 non-key cells) is unreclaimed.
  EXPECT_GT(eis, 0.95);
  auto pr = ComputePrecisionRecall(source, *r);
  // Two of three source tuples are reproduced exactly.
  EXPECT_NEAR(pr.recall, 2.0 / 3.0, 1e-9);
}

TEST_F(IntegrationTest, PerfectReclamationWhenDataComplete) {
  Table source = PaperSource(dict_);
  // Complete copies split by columns.
  Table left = TableBuilder(dict_, "left")
                   .Columns({"ID", "Name", "Age"})
                   .Row({"0", "Smith", "27"})
                   .Row({"1", "Brown", "24"})
                   .Row({"2", "Wang", "32"})
                   .Build();
  Table right = TableBuilder(dict_, "right")
                    .Columns({"ID", "Gender", "Education Level"})
                    .Row({"0", "", "Bachelors"})
                    .Row({"1", "Male", "Masters"})
                    .Row({"2", "Female", "High School"})
                    .Build();
  auto r = IntegrateTables(source, {left, right});
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(IsPerfectReclamation(source, *r)) << r->ToString();
  EXPECT_DOUBLE_EQ(EisScore(source, *r).value(), 1.0);
}

TEST_F(IntegrationTest, LabeledNullsPreventErroneousFill) {
  // Source: Smith's Gender is null. A polluting table says Male.
  // With null labeling, integration must NOT fill the null.
  Table source = PaperSource(dict_);
  Table good = source.Clone();  // the exact source as an originating table
  good.set_name("good");
  Table bad = TableBuilder(dict_, "bad")
                  .Columns({"ID", "Gender"})
                  .Row({"0", "Male"})
                  .Build();
  // Guards off in both runs so the test isolates the labeling mechanism
  // (the EIS guard alone would also veto the harmful merge).
  IntegrationOptions with_labels;
  with_labels.guard_operators = false;
  auto r1 = IntegrateTables(source, {good, bad}, with_labels);
  ASSERT_TRUE(r1.ok());
  // The perfect source tuple must survive: recall 1.
  auto pr = ComputePrecisionRecall(source, *r1);
  EXPECT_DOUBLE_EQ(pr.recall, 1.0);

  IntegrationOptions no_labels;
  no_labels.label_source_nulls = false;
  no_labels.guard_operators = false;
  auto r2 = IntegrateTables(source, {good, bad}, no_labels);
  ASSERT_TRUE(r2.ok());
  // Ablation: without labels, complementation fills Smith's null with
  // Male and the exact source tuple is lost.
  EXPECT_LT(ComputePrecisionRecall(source, *r2).recall, 1.0);
}

TEST_F(IntegrationTest, GuardsRejectHarmfulOperators) {
  // Two source rows that subsume each other except both are wanted:
  // source contains both a partial and a full tuple with different keys,
  // so β over-combining across keys must be vetoed by the guard.
  Table source = TableBuilder(dict_, "s")
                     .Columns({"k", "a", "b"})
                     .Row({"1", "x", "y"})
                     .Row({"2", "x", ""})
                     .Key({"k"})
                     .Build();
  Table t1 = TableBuilder(dict_, "t1")
                 .Columns({"k", "a", "b"})
                 .Row({"1", "x", "y"})
                 .Row({"2", "x", ""})
                 .Build();
  auto r = IntegrateTables(source, {t1});
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(IsPerfectReclamation(source, *r)) << r->ToString();
}

TEST_F(IntegrationTest, SkipsTablesWithoutSharedColumns) {
  Table source = PaperSource(dict_);
  Table junk = TableBuilder(dict_, "junk").Columns({"zz"}).Row({"1"}).Build();
  auto r = IntegrateTables(source, {PaperTableA(dict_), junk});
  ASSERT_TRUE(r.ok());
  EXPECT_GT(r->num_rows(), 0u);
}

TEST_F(IntegrationTest, OutputNeverDuplicatesRows) {
  Table source = PaperSource(dict_);
  Table a = PaperTableA(dict_);
  Table a2 = PaperTableA(dict_);
  a2.set_name("A2");
  auto r = IntegrateTables(source, {a, a2});
  ASSERT_TRUE(r.ok());
  RowSet rows;
  for (size_t i = 0; i < r->num_rows(); ++i) {
    EXPECT_TRUE(rows.insert(r->Row(i)).second) << "duplicate row " << i;
  }
}

TEST_F(IntegrationTest, RespectsRowLimits) {
  Table source = PaperSource(dict_);
  IntegrationOptions opts;
  opts.limits.MaxRows(1);
  auto r = IntegrateTables(
      source, {PaperTableA(dict_), WithKey(PaperTableB(dict_))}, opts);
  EXPECT_FALSE(r.ok());
}

}  // namespace
}  // namespace gent
