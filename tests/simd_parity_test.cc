// Randomized differential tests for the SIMD kernel layer
// (src/util/simd.h): every kernel, at every dispatch level this
// build/CPU/environment offers, against an independent naive reference
// — plus integration parity (catalog intersections, matrix scoring)
// across levels via SetDispatchLevelForTesting.
//
// Edge shapes hammered deliberately: empty inputs, 0–3 word planes
// (below the inline-dispatch threshold), unaligned tails (words ∤ 4,
// lengths ∤ 8), all-ones/all-zeros planes, and maximally skewed
// intersections. Under GENT_FORCE_SCALAR=1 only the scalar level is
// available and the suite degenerates to scalar-vs-reference — CI runs
// it both ways.

#include "src/util/simd.h"

#include <algorithm>
#include <cstring>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/benchgen/benchmarks.h"
#include "src/engine/column_stats_catalog.h"
#include "src/matrix/alignment_matrix.h"
#include "src/table/table_builder.h"
#include "src/util/cpu_features.h"
#include "src/util/random.h"

namespace gent {
namespace {

using simd::Kernels;

struct Level {
  DispatchLevel level;
  const Kernels* kernels;
};

std::vector<Level> AvailableLevels() {
  std::vector<Level> levels;
  for (DispatchLevel l : {DispatchLevel::kScalar, DispatchLevel::kAvx2}) {
    if (const Kernels* k = simd::KernelsForLevel(l)) levels.push_back({l, k});
  }
  return levels;
}

// --- naive references (independent of the scalar kernels) ------------------

int NaiveBitCount(uint64_t x) {
  int n = 0;
  for (int b = 0; b < 64; ++b) n += (x >> b) & 1;
  return n;
}

uint64_t NaivePopcountWords(const std::vector<uint64_t>& w) {
  uint64_t n = 0;
  for (uint64_t x : w) n += static_cast<uint64_t>(NaiveBitCount(x));
  return n;
}

std::vector<uint32_t> NaiveIntersectIndices(const std::vector<uint32_t>& a,
                                            const std::vector<uint32_t>& b) {
  std::set<uint32_t> in_a(a.begin(), a.end());
  std::vector<uint32_t> out;
  for (size_t j = 0; j < b.size(); ++j) {
    if (in_a.count(b[j])) out.push_back(static_cast<uint32_t>(j));
  }
  return out;
}

// Sorted, strictly increasing array of `n` values with average gap
// `gap` (gap 1 + occasional jumps keeps runs of equal-density data the
// vector kernel sees in real sorted sets).
std::vector<uint32_t> MakeSorted(Rng* rng, size_t n, uint32_t gap) {
  std::vector<uint32_t> v;
  v.reserve(n);
  uint32_t x = static_cast<uint32_t>(rng->Index(8));
  for (size_t i = 0; i < n; ++i) {
    x += 1 + static_cast<uint32_t>(rng->Index(2 * gap + 1));
    v.push_back(x);
  }
  return v;
}

std::vector<uint64_t> MakeWords(Rng* rng, size_t n, int pattern) {
  std::vector<uint64_t> w(n);
  for (size_t i = 0; i < n; ++i) {
    switch (pattern) {
      case 0:
        w[i] = 0;
        break;
      case 1:
        w[i] = ~uint64_t{0};
        break;
      case 2:
        w[i] = rng->Next();
        break;
      default:  // sparse
        w[i] = rng->Next() & rng->Next() & rng->Next();
        break;
    }
  }
  return w;
}

// --- word-kernel parity ----------------------------------------------------

TEST(SimdParityTest, PopcountAndFusedKernels) {
  Rng rng(101);
  const std::vector<size_t> word_counts = {0, 1, 2, 3, 4, 5,  6, 7,
                                           8, 9, 11, 16, 31, 33, 100};
  for (Level lv : AvailableLevels()) {
    SCOPED_TRACE(DispatchLevelName(lv.level));
    for (size_t words : word_counts) {
      for (int pa = 0; pa < 4; ++pa) {
        for (int pb = 0; pb < 4; ++pb) {
          std::vector<uint64_t> a = MakeWords(&rng, words, pa);
          std::vector<uint64_t> b = MakeWords(&rng, words, pb);
          std::vector<uint64_t> mask = MakeWords(&rng, words, 2);

          EXPECT_EQ(lv.kernels->popcount_words(a.data(), words),
                    NaivePopcountWords(a));

          std::vector<uint64_t> ab(words);
          for (size_t i = 0; i < words; ++i) ab[i] = a[i] & b[i];
          EXPECT_EQ(lv.kernels->and_popcount(a.data(), b.data(), words),
                    NaivePopcountWords(ab));

          uint64_t alpha = 1, delta = 1;
          lv.kernels->score_planes(a.data(), b.data(), mask.data(), words,
                                   &alpha, &delta);
          std::vector<uint64_t> am(words), bm(words);
          for (size_t i = 0; i < words; ++i) {
            am[i] = a[i] & mask[i];
            bm[i] = b[i] & mask[i];
          }
          EXPECT_EQ(alpha, NaivePopcountWords(am));
          EXPECT_EQ(delta, NaivePopcountWords(bm));
        }
      }
    }
  }
}

TEST(SimdParityTest, ConflictAndMergeKernels) {
  Rng rng(202);
  const std::vector<size_t> word_counts = {0, 1, 2, 3, 4, 5, 7, 8, 9, 13, 32};
  for (Level lv : AvailableLevels()) {
    SCOPED_TRACE(DispatchLevelName(lv.level));
    for (size_t words : word_counts) {
      for (int rep = 0; rep < 24; ++rep) {
        // Disjoint pos/neg per side, like real planes; patterns cycle
        // through zero / dense / sparse.
        std::vector<uint64_t> a_pos = MakeWords(&rng, words, rep % 4);
        std::vector<uint64_t> a_neg = MakeWords(&rng, words, (rep + 1) % 4);
        std::vector<uint64_t> b_pos = MakeWords(&rng, words, (rep + 2) % 4);
        std::vector<uint64_t> b_neg = MakeWords(&rng, words, (rep + 3) % 4);
        for (size_t i = 0; i < words; ++i) {
          a_neg[i] &= ~a_pos[i];
          b_neg[i] &= ~b_pos[i];
        }

        bool want_conflict = false;
        for (size_t i = 0; i < words; ++i) {
          want_conflict |=
              ((a_pos[i] & b_neg[i]) | (a_neg[i] & b_pos[i])) != 0;
        }
        EXPECT_EQ(lv.kernels->planes_conflict(a_pos.data(), a_neg.data(),
                                              b_pos.data(), b_neg.data(),
                                              words),
                  want_conflict);

        std::vector<uint64_t> out_pos(words), out_neg(words);
        lv.kernels->merge_planes(a_pos.data(), a_neg.data(), b_pos.data(),
                                 b_neg.data(), out_pos.data(),
                                 out_neg.data(), words);
        for (size_t i = 0; i < words; ++i) {
          EXPECT_EQ(out_pos[i], a_pos[i] | b_pos[i]);
          EXPECT_EQ(out_neg[i], a_neg[i] & b_neg[i]);
        }

        // Aliased form (out == a), the CombineRows contract.
        std::vector<uint64_t> alias_pos = a_pos, alias_neg = a_neg;
        lv.kernels->merge_planes(alias_pos.data(), alias_neg.data(),
                                 b_pos.data(), b_neg.data(),
                                 alias_pos.data(), alias_neg.data(), words);
        EXPECT_EQ(alias_pos, out_pos);
        EXPECT_EQ(alias_neg, out_neg);
      }
    }
  }
}

// --- intersection parity ---------------------------------------------------

TEST(SimdParityTest, IntersectionKernelsRandomizedShapes) {
  Rng rng(303);
  const std::vector<size_t> lengths = {0, 1, 2, 3, 7, 8, 9, 15, 16, 17,
                                       31, 64, 100, 257};
  const std::vector<uint32_t> gaps = {1, 3, 50};
  for (Level lv : AvailableLevels()) {
    SCOPED_TRACE(DispatchLevelName(lv.level));
    for (size_t na : lengths) {
      for (size_t nb : lengths) {
        for (uint32_t gap : gaps) {
          std::vector<uint32_t> a = MakeSorted(&rng, na, gap);
          std::vector<uint32_t> b = MakeSorted(&rng, nb, 1);
          std::vector<uint32_t> want = NaiveIntersectIndices(a, b);

          EXPECT_EQ(lv.kernels->intersect_size(a.data(), na, b.data(), nb),
                    want.size());
          std::vector<uint32_t> got(std::min(na, nb) + 1, 0xdeadbeef);
          size_t n = lv.kernels->intersect_indices(a.data(), na, b.data(),
                                                   nb, got.data());
          ASSERT_EQ(n, want.size());
          got.resize(n);
          EXPECT_EQ(got, want);
        }
      }
    }
  }
}

TEST(SimdParityTest, IntersectionEdgeShapes) {
  Rng rng(404);
  for (Level lv : AvailableLevels()) {
    SCOPED_TRACE(DispatchLevelName(lv.level));

    // Identical arrays: everything matches, indices are 0..n-1.
    for (size_t n : {1u, 8u, 9u, 1000u}) {
      std::vector<uint32_t> a = MakeSorted(&rng, n, 2);
      EXPECT_EQ(lv.kernels->intersect_size(a.data(), n, a.data(), n), n);
      std::vector<uint32_t> idx(n);
      EXPECT_EQ(
          lv.kernels->intersect_indices(a.data(), n, a.data(), n, idx.data()),
          n);
      for (size_t i = 0; i < n; ++i) EXPECT_EQ(idx[i], i);
    }

    // Disjoint interleaved ranges (evens vs odds).
    std::vector<uint32_t> evens, odds;
    for (uint32_t v = 0; v < 400; ++v) ((v & 1) ? odds : evens).push_back(v);
    EXPECT_EQ(lv.kernels->intersect_size(evens.data(), evens.size(),
                                         odds.data(), odds.size()),
              0u);

    // Maximal skew: one value probing a long array — present at the
    // ends, the middle, and absent.
    std::vector<uint32_t> big = MakeSorted(&rng, 10000, 2);
    for (uint32_t probe :
         {big.front(), big.back(), big[big.size() / 2],
          big.back() + 1u}) {
      size_t want = std::binary_search(big.begin(), big.end(), probe) ? 1 : 0;
      EXPECT_EQ(lv.kernels->intersect_size(&probe, 1, big.data(), big.size()),
                want);
      EXPECT_EQ(lv.kernels->intersect_size(big.data(), big.size(), &probe, 1),
                want);
    }

    // One side entirely below / above the other.
    std::vector<uint32_t> low = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
    std::vector<uint32_t> high = {100, 101, 102, 103, 104,
                                  105, 106, 107, 108, 109};
    EXPECT_EQ(lv.kernels->intersect_size(low.data(), low.size(), high.data(),
                                         high.size()),
              0u);
  }
}

// --- dispatch selection ----------------------------------------------------

TEST(SimdDispatchTest, LevelSelectionHonorsEnvironmentAndHardware) {
  ASSERT_NE(simd::KernelsForLevel(DispatchLevel::kScalar), nullptr);
  if (ForceScalarRequested()) {
    EXPECT_EQ(MaxDispatchLevel(), DispatchLevel::kScalar);
    EXPECT_EQ(simd::KernelsForLevel(DispatchLevel::kAvx2), nullptr);
    EXPECT_EQ(simd::ActiveDispatchLevel(), DispatchLevel::kScalar);
  } else {
    const CpuFeatures& f = DetectCpuFeatures();
    bool avx2_capable = f.avx2 && f.bmi2 && f.popcnt;
    EXPECT_EQ(MaxDispatchLevel(), avx2_capable ? DispatchLevel::kAvx2
                                               : DispatchLevel::kScalar);
    EXPECT_EQ(simd::KernelsForLevel(DispatchLevel::kAvx2) != nullptr,
              avx2_capable);
  }
  // The active level always resolves to an available table.
  EXPECT_NE(simd::KernelsForLevel(simd::ActiveDispatchLevel()), nullptr);
}

// Restores the entry dispatch level when a test scope ends.
class ScopedDispatchLevel {
 public:
  explicit ScopedDispatchLevel(DispatchLevel level)
      : original_(simd::ActiveDispatchLevel()) {
    ok_ = simd::SetDispatchLevelForTesting(level);
  }
  ~ScopedDispatchLevel() { simd::SetDispatchLevelForTesting(original_); }
  bool ok() const { return ok_; }

 private:
  DispatchLevel original_;
  bool ok_ = false;
};

TEST(SimdDispatchTest, SetDispatchLevelForTestingRejectsUnavailable) {
  if (simd::KernelsForLevel(DispatchLevel::kAvx2) != nullptr) {
    GTEST_SKIP() << "every level available here";
  }
  DispatchLevel before = simd::ActiveDispatchLevel();
  EXPECT_FALSE(simd::SetDispatchLevelForTesting(DispatchLevel::kAvx2));
  EXPECT_EQ(simd::ActiveDispatchLevel(), before);
}

// --- integration parity across levels --------------------------------------

// The public entry points the engine actually calls must agree at every
// level — this covers the inline small-words fast paths and the
// dispatch plumbing that the kernel-table tests above bypass.
TEST(SimdIntegrationParityTest, CatalogIntersectionsAgreeAcrossLevels) {
  Rng rng(505);
  std::vector<std::pair<std::vector<ValueId>, std::vector<ValueId>>> pairs;
  for (size_t rep = 0; rep < 40; ++rep) {
    size_t na = rng.Index(600);
    size_t nb = rep % 5 == 0 ? rng.Index(8) : rng.Index(600);  // skew mix
    pairs.emplace_back(MakeSorted(&rng, na, 2), MakeSorted(&rng, nb, 3));
  }

  std::vector<size_t> scalar_counts;
  {
    ScopedDispatchLevel scoped(DispatchLevel::kScalar);
    ASSERT_TRUE(scoped.ok());
    for (const auto& [a, b] : pairs) {
      scalar_counts.push_back(SortedIntersectionSize(a, b));
    }
  }
  for (Level lv : AvailableLevels()) {
    ScopedDispatchLevel scoped(lv.level);
    ASSERT_TRUE(scoped.ok());
    SCOPED_TRACE(DispatchLevelName(lv.level));
    for (size_t i = 0; i < pairs.size(); ++i) {
      EXPECT_EQ(SortedIntersectionSize(pairs[i].first, pairs[i].second),
                scalar_counts[i]);
    }
  }
}

TEST(SimdIntegrationParityTest, OverlapCountsAndTopKAgreeAcrossLevels) {
  auto bench = MakeTpTrBenchmark("TP-TR Small", TpTrSmallConfig());
  ASSERT_TRUE(bench.ok()) << bench.status().ToString();
  ColumnStatsCatalog catalog(*bench->lake);
  const size_t n_sources = std::min<size_t>(4, bench->sources.size());

  // Per source: the dense whole-table query set (block-merge side of
  // the spine hybrid) and a tiny slice of it (galloping side).
  std::vector<std::vector<ValueId>> queries;
  for (size_t i = 0; i < n_sources; ++i) {
    std::vector<ValueId> q = SortedQueryValues(bench->sources[i].source);
    queries.push_back(q);
    if (q.size() > 6) {
      queries.emplace_back(q.begin(), q.begin() + 5);
    }
  }

  std::vector<std::vector<ColumnStatsCatalog::Overlap>> scalar_overlaps;
  std::vector<std::vector<size_t>> scalar_topk;
  {
    ScopedDispatchLevel scoped(DispatchLevel::kScalar);
    ASSERT_TRUE(scoped.ok());
    for (const auto& q : queries) {
      scalar_overlaps.push_back(catalog.OverlapCounts(q));
    }
    for (size_t i = 0; i < n_sources; ++i) {
      scalar_topk.push_back(catalog.TopKTables(bench->sources[i].source, 10));
    }
  }

  for (Level lv : AvailableLevels()) {
    ScopedDispatchLevel scoped(lv.level);
    ASSERT_TRUE(scoped.ok());
    SCOPED_TRACE(DispatchLevelName(lv.level));
    for (size_t i = 0; i < queries.size(); ++i) {
      auto got = catalog.OverlapCounts(queries[i]);
      ASSERT_EQ(got.size(), scalar_overlaps[i].size());
      for (size_t k = 0; k < got.size(); ++k) {
        EXPECT_TRUE(got[k].ref == scalar_overlaps[i][k].ref);
        EXPECT_EQ(got[k].count, scalar_overlaps[i][k].count);
      }
    }
    for (size_t i = 0; i < n_sources; ++i) {
      EXPECT_EQ(catalog.TopKTables(bench->sources[i].source, 10),
                scalar_topk[i]);
    }
  }
}

TEST(SimdIntegrationParityTest, MatrixScoringAgreesAcrossLevels) {
  // Wide source (200 cols = 4 words — above the inline threshold) so
  // the dispatched plane kernels actually engage, plus a narrow one.
  Rng rng(606);
  for (size_t cols : {5u, 200u}) {
    auto dict = MakeDictionary();
    std::vector<std::string> names;
    for (size_t c = 0; c < cols; ++c) names.push_back("c" + std::to_string(c));
    TableBuilder sb(dict, "s");
    sb.Columns(names);
    TableBuilder cb(dict, "cand");
    cb.Columns(names);
    for (size_t r = 0; r < 40; ++r) {
      std::vector<std::string> srow, crow;
      for (size_t c = 0; c < cols; ++c) {
        std::string v = "v" + std::to_string(rng.Index(5));
        srow.push_back(c == 0 ? "k" + std::to_string(r) : v);
        // Candidate agrees, contradicts, or nulls out per cell.
        size_t roll = rng.Index(3);
        crow.push_back(c == 0 ? "k" + std::to_string(r % 37)
                              : roll == 0 ? srow.back()
                                          : roll == 1 ? "" : "x" + v);
      }
      sb.Row(srow);
      cb.Row(crow);
    }
    Table source = sb.Build();
    Table cand = cb.Build();
    ASSERT_TRUE(source.SetKeyColumns({0}).ok());

    double scalar_score = 0.0;
    AlignmentMatrix scalar_combined(0, 0);
    {
      ScopedDispatchLevel scoped(DispatchLevel::kScalar);
      ASSERT_TRUE(scoped.ok());
      auto m = InitializeMatrix(source, cand);
      ASSERT_TRUE(m.ok());
      scalar_combined = CombineMatrices(*m, *m);
      scalar_score = EvaluateMatrixSimilarity(scalar_combined, source);
    }
    for (Level lv : AvailableLevels()) {
      ScopedDispatchLevel scoped(lv.level);
      ASSERT_TRUE(scoped.ok());
      SCOPED_TRACE(DispatchLevelName(lv.level));
      auto m = InitializeMatrix(source, cand);
      ASSERT_TRUE(m.ok());
      AlignmentMatrix combined = CombineMatrices(*m, *m);
      ASSERT_EQ(combined.TotalAlternatives(),
                scalar_combined.TotalAlternatives());
      double score = EvaluateMatrixSimilarity(combined, source);
      EXPECT_EQ(std::memcmp(&score, &scalar_score, sizeof(double)), 0)
          << score << " vs " << scalar_score;
    }
  }
}

}  // namespace
}  // namespace gent
