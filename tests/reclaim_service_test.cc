// Tests for the resident multi-lake ReclaimService (src/engine/
// reclaim_service) and its discovery cache, plus regression tests for
// the I/O edge cases a resident service depends on: CSV bare-CR
// handling and snapshot close/trailing-garbage detection.

#include "src/engine/reclaim_service.h"

#include <atomic>
#include <cerrno>
#include <filesystem>
#include <fstream>
#include <thread>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

#include <gtest/gtest.h>

#include "src/lake/snapshot.h"
#include "src/storage/io.h"
#include "src/metrics/similarity.h"
#include "src/table/table_builder.h"
#include "src/table/table_io.h"

namespace gent {
namespace {

// --- Fixture: vertical fragments spread over two lake shards ---------------
//
// Each source k,a,b splits into frag_a (k,a) and frag_b (k,b). In the
// "split" fixture the a-fragments live in shard "alpha" and the
// b-fragments in shard "beta", so full reclamation requires cross-shard
// fan-out; in the "paired" fixture each shard holds complete fragment
// pairs for its own sources, so named-lake routing suffices.

struct ServiceFixture {
  DictionaryPtr dict = MakeDictionary();
  std::unique_ptr<DataLake> alpha;
  std::unique_ptr<DataLake> beta;
  std::vector<Table> sources;
};

std::vector<std::vector<std::string>> SourceRows(size_t s) {
  const std::string tag = "s" + std::to_string(s) + "_";
  std::vector<std::vector<std::string>> rows;
  for (size_t r = 0; r < 10; ++r) {
    rows.push_back({tag + "k" + std::to_string(r),
                    tag + "a" + std::to_string(r),
                    tag + "b" + std::to_string(r)});
  }
  return rows;
}

Table MakeSource(const DictionaryPtr& dict, size_t s) {
  TableBuilder sb(dict, "source" + std::to_string(s));
  sb.Columns({"k", "a", "b"});
  for (const auto& row : SourceRows(s)) sb.Row(row);
  return sb.Key({"k"}).Build();
}

void AddFragments(DataLake& lake, const DictionaryPtr& dict, size_t s,
                  bool frag_a, bool frag_b) {
  const std::string tag = "s" + std::to_string(s) + "_";
  const auto rows = SourceRows(s);
  if (frag_a) {
    TableBuilder f(dict, tag + "frag_a");
    f.Columns({"k", "a"});
    for (const auto& row : rows) f.Row({row[0], row[1]});
    ASSERT_TRUE(lake.AddTable(f.Build()).ok());
  }
  if (frag_b) {
    TableBuilder f(dict, tag + "frag_b");
    f.Columns({"k", "b"});
    for (const auto& row : rows) f.Row({row[0], row[2]});
    ASSERT_TRUE(lake.AddTable(f.Build()).ok());
  }
}

// Shard "alpha" serves sources [0, n/2) completely, "beta" the rest.
ServiceFixture MakePairedFixture(size_t n_sources) {
  ServiceFixture fx;
  fx.alpha = std::make_unique<DataLake>(fx.dict);
  fx.beta = std::make_unique<DataLake>(fx.dict);
  for (size_t s = 0; s < n_sources; ++s) {
    fx.sources.push_back(MakeSource(fx.dict, s));
    DataLake& lake = s < n_sources / 2 ? *fx.alpha : *fx.beta;
    AddFragments(lake, fx.dict, s, true, true);
  }
  return fx;
}

// Every source's a-fragment is in "alpha", b-fragment in "beta":
// reclamation needs candidates from both shards.
ServiceFixture MakeSplitFixture(size_t n_sources) {
  ServiceFixture fx;
  fx.alpha = std::make_unique<DataLake>(fx.dict);
  fx.beta = std::make_unique<DataLake>(fx.dict);
  for (size_t s = 0; s < n_sources; ++s) {
    fx.sources.push_back(MakeSource(fx.dict, s));
    AddFragments(*fx.alpha, fx.dict, s, true, false);
    AddFragments(*fx.beta, fx.dict, s, false, true);
  }
  return fx;
}

std::unique_ptr<ReclaimService> MakeService(const ServiceFixture& fx,
                                            size_t cache_capacity = 256,
                                            size_t num_threads = 0) {
  ServiceOptions options;
  options.dict = fx.dict;
  options.cache_capacity = cache_capacity;
  options.num_threads = num_threads;
  auto service = std::make_unique<ReclaimService>(std::move(options));
  EXPECT_TRUE(service->AddLakeView("alpha", *fx.alpha).ok());
  EXPECT_TRUE(service->AddLakeView("beta", *fx.beta).ok());
  return service;
}

void ExpectSameReclamation(const Result<ReclamationResult>& a,
                           const Result<ReclamationResult>& b,
                           const std::string& context) {
  ASSERT_EQ(a.ok(), b.ok()) << context << ": " << a.status().ToString()
                            << " vs " << b.status().ToString();
  if (!a.ok()) {
    EXPECT_EQ(a.status().code(), b.status().code()) << context;
    return;
  }
  EXPECT_TRUE(TablesBitIdentical(a->reclaimed, b->reclaimed)) << context;
  EXPECT_EQ(a->originating_names, b->originating_names) << context;
  EXPECT_DOUBLE_EQ(a->predicted_eis, b->predicted_eis) << context;
}

// Cross-dictionary comparison (ids are not comparable; strings are).
void ExpectSameCells(const Table& a, const Table& b,
                     const std::string& context) {
  ASSERT_EQ(a.column_names(), b.column_names()) << context;
  ASSERT_EQ(a.num_rows(), b.num_rows()) << context;
  for (size_t r = 0; r < a.num_rows(); ++r) {
    for (size_t c = 0; c < a.num_cols(); ++c) {
      EXPECT_EQ(a.CellString(r, c), b.CellString(r, c))
          << context << " (" << r << "," << c << ")";
    }
  }
}

// --- Routing parity with per-lake serial GenT -------------------------------

TEST(ReclaimServiceTest, RoutedReclaimBitIdenticalToSerialGenTPerLake) {
  ServiceFixture fx = MakePairedFixture(8);
  auto service = MakeService(fx);

  // The references: one plain GenT per lake, serial Reclaim calls.
  GenT alpha(*fx.alpha), beta(*fx.beta);
  for (size_t s = 0; s < fx.sources.size(); ++s) {
    const bool in_alpha = s < fx.sources.size() / 2;
    ReclaimRequest request;
    request.lake = in_alpha ? "alpha" : "beta";
    auto got = service->Reclaim(fx.sources[s], request);
    auto want = (in_alpha ? alpha : beta).Reclaim(fx.sources[s]);
    ExpectSameReclamation(got, want, "source " + std::to_string(s));
    ASSERT_TRUE(got.ok());
    EXPECT_DOUBLE_EQ(EisScore(fx.sources[s], got->reclaimed).value(), 1.0);
  }
}

TEST(ReclaimServiceTest, FanOutReclaimsSourcesSplitAcrossShards) {
  ServiceFixture fx = MakeSplitFixture(4);
  auto service = MakeService(fx);

  for (size_t s = 0; s < fx.sources.size(); ++s) {
    // Either shard alone holds half the columns...
    ReclaimRequest alpha_only;
    alpha_only.lake = "alpha";
    auto partial = service->Reclaim(fx.sources[s], alpha_only);
    ASSERT_TRUE(partial.ok());
    EXPECT_LT(EisScore(fx.sources[s], partial->reclaimed).value(), 1.0);

    // ...while the fan-out merges candidates from both and reclaims
    // perfectly.
    auto full = service->Reclaim(fx.sources[s]);
    ASSERT_TRUE(full.ok()) << full.status().ToString();
    EXPECT_DOUBLE_EQ(EisScore(fx.sources[s], full->reclaimed).value(), 1.0);
    EXPECT_EQ(full->originating_names.size(), 2u);
  }
}

TEST(ReclaimServiceTest, BatchBitIdenticalToSerialReclaimCalls) {
  ServiceFixture fx = MakeSplitFixture(6);
  auto service = MakeService(fx, /*cache_capacity=*/256, /*num_threads=*/4);

  std::vector<Result<ReclamationResult>> serial;
  for (const Table& source : fx.sources) {
    serial.push_back(service->Reclaim(source));
  }
  // The serial pass warmed the cache; the batch must not care (hits
  // replay what discovery would produce).
  auto batch = service->ReclaimBatch(fx.sources);
  ASSERT_EQ(batch.size(), serial.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    ExpectSameReclamation(batch[i], serial[i], "source " + std::to_string(i));
  }
}

// --- Cache behavior ----------------------------------------------------------

TEST(ReclaimServiceTest, CacheHitBitIdenticalToColdAndBypassedPaths) {
  ServiceFixture fx = MakePairedFixture(4);
  auto service = MakeService(fx);

  ReclaimRequest request;
  request.lake = "alpha";
  auto cold = service->Reclaim(fx.sources[0], request);
  auto stats = service->cache_stats();
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.entries, 1u);

  auto warm = service->Reclaim(fx.sources[0], request);
  stats = service->cache_stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);

  request.bypass_cache = true;
  auto bypassed = service->Reclaim(fx.sources[0], request);
  EXPECT_EQ(service->cache_stats().hits, 1u);  // bypass never touches it

  ExpectSameReclamation(warm, cold, "warm vs cold");
  ExpectSameReclamation(bypassed, cold, "bypassed vs cold");
}

TEST(ReclaimServiceTest, CacheKeyDiscriminatesRouteContentAndConfig) {
  ServiceFixture fx = MakePairedFixture(4);
  auto service = MakeService(fx);

  // Same source, different shard: no cross-shard hit.
  ReclaimRequest to_alpha, to_beta;
  to_alpha.lake = "alpha";
  to_beta.lake = "beta";
  (void)service->Reclaim(fx.sources[0], to_alpha);
  (void)service->Reclaim(fx.sources[0], to_beta);
  EXPECT_EQ(service->cache_stats().hits, 0u);
  EXPECT_EQ(service->cache_stats().misses, 2u);

  // Same schema and distinct value sets, different row pairing: the
  // fingerprint must see full columns, not just distinct sets.
  Table reordered = fx.sources[0].Clone();
  ASSERT_GE(reordered.num_rows(), 2u);
  for (size_t c = 1; c < reordered.num_cols(); ++c) {
    std::swap(reordered.mutable_column(c)[0], reordered.mutable_column(c)[1]);
  }
  (void)service->Reclaim(reordered, to_alpha);
  EXPECT_EQ(service->cache_stats().misses, 3u);

  // Leave-one-out toggles the discovery config per source: also a miss.
  ReclaimRequest loo = to_alpha;
  loo.exclude_source_name = true;
  (void)service->Reclaim(fx.sources[0], loo);
  EXPECT_EQ(service->cache_stats().misses, 4u);

  // A different row budget shapes expansion deterministically, so it
  // keys the cache too.
  ReclaimRequest budgeted = to_alpha;
  budgeted.max_rows = 1000;
  (void)service->Reclaim(fx.sources[0], budgeted);
  EXPECT_EQ(service->cache_stats().misses, 5u);

  // And the original request still hits.
  (void)service->Reclaim(fx.sources[0], to_alpha);
  EXPECT_EQ(service->cache_stats().hits, 1u);
}

TEST(ReclaimServiceTest, CacheIsBoundedAndEvictsLru) {
  ServiceFixture fx = MakePairedFixture(8);
  auto service = MakeService(fx, /*cache_capacity=*/2);

  ReclaimRequest request;
  request.lake = "alpha";
  auto baseline = service->Reclaim(fx.sources[0], request);
  (void)service->Reclaim(fx.sources[1], request);
  (void)service->Reclaim(fx.sources[2], request);  // evicts source0's entry
  auto stats = service->cache_stats();
  EXPECT_EQ(stats.entries, 2u);
  EXPECT_GE(stats.evictions, 1u);

  // Evicted entries re-discover and still agree.
  auto rediscovered = service->Reclaim(fx.sources[0], request);
  ExpectSameReclamation(rediscovered, baseline, "after eviction");
}

TEST(ReclaimServiceTest, DeadlineRequestsNeverPopulateTheCache) {
  ServiceFixture fx = MakePairedFixture(4);
  auto service = MakeService(fx);

  // A deadline can truncate expansion silently (dropped join paths, no
  // error); caching that set under the deadline-free key would poison
  // untimed requests. Timed requests read the cache but never write it.
  ReclaimRequest timed;
  timed.lake = "alpha";
  timed.timeout_seconds = 30.0;  // generous: this request won't time out
  (void)service->Reclaim(fx.sources[0], timed);
  EXPECT_EQ(service->cache_stats().entries, 0u);

  // An untimed request populates; the timed one then hits it.
  ReclaimRequest untimed;
  untimed.lake = "alpha";
  auto cold = service->Reclaim(fx.sources[0], untimed);
  EXPECT_EQ(service->cache_stats().entries, 1u);
  auto warm_timed = service->Reclaim(fx.sources[0], timed);
  EXPECT_EQ(service->cache_stats().hits, 1u);
  ExpectSameReclamation(warm_timed, cold, "timed hit vs untimed cold");
}

TEST(ReclaimServiceTest, DisabledCacheStillServes) {
  ServiceFixture fx = MakePairedFixture(4);
  auto with_cache = MakeService(fx, /*cache_capacity=*/256);
  auto no_cache = MakeService(fx, /*cache_capacity=*/0);

  ReclaimRequest request;
  request.lake = "beta";
  auto a = with_cache->Reclaim(fx.sources[3], request);
  auto b = no_cache->Reclaim(fx.sources[3], request);
  ExpectSameReclamation(a, b, "cache on vs off");
  EXPECT_EQ(no_cache->cache_stats().entries, 0u);
  EXPECT_EQ(no_cache->cache_stats().capacity, 0u);
}

// --- Concurrency: N threads hammering one resident service ------------------

TEST(ReclaimServiceTest, ConcurrentHammerBitIdenticalToSerialReference) {
  ServiceFixture fx = MakeSplitFixture(6);
  auto service = MakeService(fx);

  // Serial reference, computed with the cache bypassed so the hammer
  // below exercises both cold (miss) and warm (hit) paths itself.
  std::vector<Result<ReclamationResult>> reference;
  std::vector<ReclaimRequest> requests;
  for (size_t s = 0; s < fx.sources.size(); ++s) {
    ReclaimRequest request;
    if (s % 3 == 1) request.lake = "alpha";
    if (s % 3 == 2) request.lake = "beta";
    ReclaimRequest bypass = request;
    bypass.bypass_cache = true;
    reference.push_back(service->Reclaim(fx.sources[s], bypass));
    requests.push_back(request);
  }
  ASSERT_EQ(service->cache_stats().entries, 0u);

  constexpr size_t kThreads = 8;
  constexpr size_t kIters = 4;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t]() {
      for (size_t iter = 0; iter < kIters; ++iter) {
        // Stagger the starting source per thread to mix routes.
        for (size_t s = 0; s < fx.sources.size(); ++s) {
          size_t i = (s + t) % fx.sources.size();
          auto got = service->Reclaim(fx.sources[i], requests[i]);
          const auto& want = reference[i];
          bool same =
              got.ok() == want.ok() &&
              (!got.ok() ||
               (TablesBitIdentical(got->reclaimed, want->reclaimed) &&
                got->originating_names == want->originating_names &&
                got->predicted_eis == want->predicted_eis));
          if (!same) mismatches.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(mismatches.load(), 0);
  auto stats = service->cache_stats();
  EXPECT_GT(stats.hits, 0u) << "hammer never hit the warm cache";
  EXPECT_GT(stats.misses, 0u);
}

TEST(ReclaimServiceTest, ConcurrentBatchesShareThePool) {
  ServiceFixture fx = MakePairedFixture(6);
  auto service = MakeService(fx, /*cache_capacity=*/256, /*num_threads=*/4);

  std::vector<Result<ReclamationResult>> first, second;
  std::thread a([&]() { first = service->ReclaimBatch(fx.sources); });
  std::thread b([&]() { second = service->ReclaimBatch(fx.sources); });
  a.join();
  b.join();
  ASSERT_EQ(first.size(), second.size());
  for (size_t i = 0; i < first.size(); ++i) {
    ExpectSameReclamation(first[i], second[i], "source " + std::to_string(i));
  }
}

// --- Admission, registration, and warm start --------------------------------

TEST(ReclaimServiceTest, ForeignDictionarySourceIsReInterned) {
  ServiceFixture fx = MakePairedFixture(4);
  auto service = MakeService(fx);

  // The same source content, built over a completely separate dictionary
  // (a request arriving over the wire).
  auto foreign_dict = MakeDictionary();
  Table foreign = MakeSource(foreign_dict, 1);

  ReclaimRequest request;
  request.lake = "alpha";
  auto native = service->Reclaim(fx.sources[1], request);
  auto translated = service->Reclaim(foreign, request);
  ExpectSameReclamation(translated, native, "foreign vs native dictionary");
}

TEST(ReclaimServiceTest, RegistrationAndRoutingErrors) {
  ServiceFixture fx = MakePairedFixture(2);
  ServiceOptions options;
  options.dict = fx.dict;
  ReclaimService service(std::move(options));

  // Serving before any lake is registered.
  EXPECT_EQ(service.Reclaim(fx.sources[0]).status().code(),
            StatusCode::kInvalidArgument);

  EXPECT_TRUE(service.AddLakeView("alpha", *fx.alpha).ok());
  EXPECT_EQ(service.AddLakeView("alpha", *fx.beta).code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(service.AddLakeView("", *fx.beta).code(),
            StatusCode::kInvalidArgument);

  // A lake on a different dictionary cannot join the shard set.
  DataLake foreign;
  EXPECT_EQ(service.AddLakeView("gamma", foreign).code(),
            StatusCode::kInvalidArgument);

  ReclaimRequest request;
  request.lake = "nope";
  EXPECT_EQ(service.Reclaim(fx.sources[0], request).status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(service.lake("nope").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(service.num_lakes(), 1u);
  EXPECT_EQ(service.lake_names(), std::vector<std::string>{"alpha"});
}

TEST(ReclaimServiceTest, SnapshotWarmStartedShardServesIdentically) {
  ServiceFixture fx = MakePairedFixture(4);
  const std::string snap =
      (std::filesystem::temp_directory_path() /
       ("gent_service_snap_" + std::to_string(::getpid()) + ".snap"))
          .string();
  ASSERT_TRUE(SaveSnapshot(*fx.alpha, snap).ok());

  ServiceOptions options;  // fresh dictionary: the warm-start path
  ReclaimService service(std::move(options));
  ASSERT_TRUE(service.AddLakeFromSnapshot("alpha", snap).ok());
  EXPECT_EQ(service.num_lakes(), 1u);

  auto reference = MakeService(fx);
  ReclaimRequest request;
  request.lake = "alpha";
  // The snapshot-backed service has its own dictionary, so compare by
  // cell strings (the source is re-interned at admission).
  auto got = service.Reclaim(fx.sources[0], request);
  auto want = reference->Reclaim(fx.sources[0], request);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  ASSERT_TRUE(want.ok());
  ExpectSameCells(got->reclaimed, want->reclaimed, "snapshot warm start");
  EXPECT_EQ(got->originating_names, want->originating_names);
}

TEST(ReclaimServiceTest, DefaultThreadsAreHardwareConcurrency) {
  ServiceFixture fx = MakePairedFixture(2);
  auto service = MakeService(fx);
  const size_t hw = std::thread::hardware_concurrency();
  if (hw > 0) EXPECT_EQ(service->num_threads(), hw);
}

// --- Regression: CSV bare-CR handling (src/table/table_io) ------------------

TEST(CsvCrRegressionTest, CrOnlyLineEndingsSeparateRecords) {
  auto dict = MakeDictionary();
  // Old-Mac export: CR-only line endings. Before the fix every '\r' was
  // silently dropped, gluing "a" and the next row's key into one field.
  auto table = ParseCsvText(dict, "t", "k,v\r1,a\r2,b\r");
  ASSERT_TRUE(table.ok()) << table.status().ToString();
  ASSERT_EQ(table->num_rows(), 2u);
  EXPECT_EQ(table->CellString(0, 0), "1");
  EXPECT_EQ(table->CellString(0, 1), "a");
  EXPECT_EQ(table->CellString(1, 0), "2");
  EXPECT_EQ(table->CellString(1, 1), "b");
}

TEST(CsvCrRegressionTest, CrlfAndMixedEndingsStillParse) {
  auto dict = MakeDictionary();
  auto table = ParseCsvText(dict, "t", "k,v\r\n1,a\r2,b\n3,c\r\n");
  ASSERT_TRUE(table.ok()) << table.status().ToString();
  ASSERT_EQ(table->num_rows(), 3u);
  EXPECT_EQ(table->CellString(2, 1), "c");
}

TEST(CsvCrRegressionTest, ValuesWithBareCrRoundTripThroughWriteRead) {
  auto dict = MakeDictionary();
  Table t = TableBuilder(dict, "t")
                .Columns({"k", "v"})
                .Row({"1", "line1\rline2"})     // bare CR inside a value
                .Row({"2", "crlf\r\ninside"})   // CRLF inside a value
                .Row({"3", "trailing\r"})
                .Build();
  const std::string path =
      (std::filesystem::temp_directory_path() /
       ("gent_cr_roundtrip_" + std::to_string(::getpid()) + ".csv"))
          .string();
  ASSERT_TRUE(WriteCsv(t, path).ok());
  auto back = ReadCsv(MakeDictionary(), "t", path);
  std::filesystem::remove(path);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ExpectSameCells(*back, t, "CR round-trip");
}

// --- Regression: snapshot close/trailing-garbage (src/lake/snapshot) --------

TEST(SnapshotRegressionTest, TrailingGarbageAfterLastSectionRejected) {
  DataLake lake;
  (void)lake.AddTable(TableBuilder(lake.dict(), "t")
                          .Columns({"a", "b"})
                          .Row({"1", "2"})
                          .Build());
  const std::string path =
      (std::filesystem::temp_directory_path() /
       ("gent_trailing_" + std::to_string(::getpid()) + ".snap"))
          .string();
  ASSERT_TRUE(SaveSnapshot(lake, path).ok());
  {
    std::ofstream out(path, std::ios::binary | std::ios::app);
    out << "JUNKJUNK";  // a truncated write of a second snapshot, say
  }
  DataLake fresh;
  Status s = LoadSnapshot(fresh, path);
  std::filesystem::remove(path);
  EXPECT_EQ(s.code(), StatusCode::kIOError);
  EXPECT_NE(s.message().find("trailing"), std::string::npos);
  // Rejected before anything was registered.
  EXPECT_EQ(fresh.size(), 0u);
}

TEST(SnapshotRegressionTest, FullDiskSurfacesAtCloseNotAsSuccess) {
  // A full disk accepts opens and buffered writes; ENOSPC surfaces when
  // the bytes drain at flush/fsync time. Inject exactly that shape:
  // every fwrite "succeeds", the commit-time flush fails. Before the
  // Close() fix a small snapshot "saved" successfully while writing
  // nothing; now the save must fail typed and leave no file behind.
  DataLake lake;
  (void)lake.AddTable(TableBuilder(lake.dict(), "t")
                          .Columns({"a"})
                          .Row({"1"})
                          .Build());
  const std::string path =
      (std::filesystem::temp_directory_path() /
       ("gent_enospc_close_" + std::to_string(::getpid()) + ".snap"))
          .string();
  {
    io::FaultInjector injector;
    io::FaultPlan plan;
    plan.op_mask = io::OpBit(io::Op::kFlush);
    plan.kind = io::FaultKind::kErrno;
    plan.error_code = ENOSPC;
    injector.Arm(plan);
    io::ScopedFaultInjector scope(&injector);
    Status s = SaveSnapshot(lake, path);
    EXPECT_EQ(s.code(), StatusCode::kIOError);
  }
  EXPECT_FALSE(std::filesystem::exists(path));
}

}  // namespace
}  // namespace gent
