// Property tests for candidate discovery (Algorithms 3-4): invariants
// that must hold for any lake, checked over seeded random lakes.

#include <algorithm>
#include <string>
#include <unordered_set>
#include <vector>

#include <gtest/gtest.h>

#include "src/discovery/discovery.h"
#include "src/gent/gent.h"
#include "src/lake/data_lake.h"
#include "src/table/table_builder.h"
#include "src/util/random.h"

namespace gent {
namespace {

// A random lake whose tables draw from the source's value domain with
// varying overlap, plus unrelated distractors.
struct RandomLakeCase {
  std::unique_ptr<DataLake> lake;
  std::unique_ptr<Table> source;
};

RandomLakeCase MakeRandomLake(uint64_t seed) {
  RandomLakeCase out;
  out.lake = std::make_unique<DataLake>();
  const DictionaryPtr& dict = out.lake->dict();
  Rng rng(seed);

  const size_t rows = 8 + rng.Index(12);
  TableBuilder sb(dict, "source");
  sb.Columns({"k", "a", "b", "c"});
  std::vector<std::vector<std::string>> source_rows;
  for (size_t r = 0; r < rows; ++r) {
    std::vector<std::string> row = {
        "key" + std::to_string(r), "a" + std::to_string(rng.Index(6)),
        "b" + std::to_string(rng.Index(6)), "c" + std::to_string(rng.Index(6))};
    source_rows.push_back(row);
    sb.Row(row);
  }
  out.source = std::make_unique<Table>(sb.Key({"k"}).Build());

  // Overlapping tables: vertical fragments with random row subsets.
  const size_t n_overlapping = 2 + rng.Index(4);
  for (size_t t = 0; t < n_overlapping; ++t) {
    TableBuilder tb(dict, "overlap" + std::to_string(t));
    const bool with_b = rng.Bernoulli(0.5);
    tb.Columns(with_b ? std::vector<std::string>{"k", "a", "b"}
                      : std::vector<std::string>{"k", "c"});
    for (const auto& row : source_rows) {
      if (rng.Bernoulli(0.3)) continue;  // drop some rows
      if (with_b) {
        tb.Row({row[0], row[1], row[2]});
      } else {
        tb.Row({row[0], row[3]});
      }
    }
    (void)out.lake->AddTable(tb.Build());
  }
  // Distractors sharing nothing with the source.
  const size_t n_distractors = 1 + rng.Index(4);
  for (size_t t = 0; t < n_distractors; ++t) {
    TableBuilder tb(dict, "noise" + std::to_string(t));
    tb.Columns({"x", "y"});
    for (size_t r = 0; r < 10; ++r) {
      tb.Row({"nx" + std::to_string(rng.Index(50)) + "_" + std::to_string(t),
              "ny" + std::to_string(rng.Index(50)) + "_" + std::to_string(t)});
    }
    (void)out.lake->AddTable(tb.Build());
  }
  return out;
}

class DiscoverySweep : public ::testing::TestWithParam<int> {};

TEST_P(DiscoverySweep, MappedColumnsGenuinelyOverlap) {
  RandomLakeCase c = MakeRandomLake(GetParam() * 7331 + 3);
  GenT gent(*c.lake);
  Discovery discovery(gent.index(), {});
  auto candidates = discovery.FindCandidates(*c.source);
  ASSERT_TRUE(candidates.ok());
  for (const Candidate& cand : *candidates) {
    for (const auto& [src_name, cand_col] : cand.mapping) {
      auto src_col = c.source->ColumnIndex(src_name);
      ASSERT_TRUE(src_col.has_value());
      // The mapped candidate column must share at least one value with
      // the source column (τ > 0 guarantees non-empty overlap).
      std::unordered_set<ValueId> src_vals;
      for (ValueId v : c.source->column(*src_col)) {
        if (v != kNull) src_vals.insert(v);
      }
      bool any = false;
      for (ValueId v : cand.table.column(cand_col)) {
        if (v != kNull && src_vals.count(v)) any = true;
      }
      EXPECT_TRUE(any) << cand.table.name() << " col " << src_name;
    }
  }
}

TEST_P(DiscoverySweep, DistractorsNeverBecomeCandidates) {
  RandomLakeCase c = MakeRandomLake(GetParam() * 104729 + 11);
  GenT gent(*c.lake);
  Discovery discovery(gent.index(), {});
  auto candidates = discovery.FindCandidates(*c.source);
  ASSERT_TRUE(candidates.ok());
  for (const Candidate& cand : *candidates) {
    EXPECT_EQ(c.lake->table(cand.lake_index).name().rfind("noise", 0),
              std::string::npos)
        << "distractor retrieved: " << c.lake->table(cand.lake_index).name();
  }
}

TEST_P(DiscoverySweep, TauIsMonotone) {
  RandomLakeCase c = MakeRandomLake(GetParam() * 31 + 7);
  GenT gent(*c.lake);
  DiscoveryConfig lo, hi;
  lo.tau = 0.1;
  hi.tau = 0.7;
  auto loose = Discovery(gent.index(), lo).FindCandidates(*c.source);
  auto strict = Discovery(gent.index(), hi).FindCandidates(*c.source);
  ASSERT_TRUE(loose.ok());
  ASSERT_TRUE(strict.ok());
  // Raising τ can only shrink the candidate set (as a set of lake
  // tables).
  std::unordered_set<size_t> loose_set, strict_set;
  for (const auto& cand : *loose) loose_set.insert(cand.lake_index);
  for (const auto& cand : *strict) strict_set.insert(cand.lake_index);
  for (size_t idx : strict_set) {
    EXPECT_TRUE(loose_set.count(idx))
        << "table " << idx << " appears only under the stricter τ";
  }
}

TEST_P(DiscoverySweep, ExcludeTableIsHonored) {
  RandomLakeCase c = MakeRandomLake(GetParam() * 13 + 1);
  GenT gent(*c.lake);
  DiscoveryConfig config;
  auto all = Discovery(gent.index(), config).FindCandidates(*c.source);
  ASSERT_TRUE(all.ok());
  if (all->empty()) GTEST_SKIP() << "no candidates for this seed";
  const std::string excluded =
      c.lake->table(all->front().lake_index).name();
  config.exclude_table = excluded;
  auto rest = Discovery(gent.index(), config).FindCandidates(*c.source);
  ASSERT_TRUE(rest.ok());
  for (const Candidate& cand : *rest) {
    EXPECT_NE(c.lake->table(cand.lake_index).name(), excluded);
  }
}

TEST_P(DiscoverySweep, ExactDuplicateIsPruned) {
  RandomLakeCase c = MakeRandomLake(GetParam() * 997 + 5);
  GenT base_gent(*c.lake);
  auto base = Discovery(base_gent.index(), {}).FindCandidates(*c.source);
  ASSERT_TRUE(base.ok());
  if (base->empty()) GTEST_SKIP() << "no candidates for this seed";

  // Clone the lake and append an exact duplicate of the top candidate.
  DataLake bigger(c.lake->dict());
  for (const Table& t : c.lake->tables()) {
    (void)bigger.AddTable(t.Clone());
  }
  Table dup = c.lake->table(base->front().lake_index).Clone();
  dup.set_name("the_duplicate");
  (void)bigger.AddTable(std::move(dup));

  GenT gent(bigger);
  auto with_dup = Discovery(gent.index(), {}).FindCandidates(*c.source);
  ASSERT_TRUE(with_dup.ok());
  // The duplicate and its original must not both survive (paper
  // Example 9 / Algorithm 3 line 15).
  bool original = false, duplicate = false;
  const std::string original_name =
      c.lake->table(base->front().lake_index).name();
  for (const Candidate& cand : *with_dup) {
    const std::string& name = bigger.table(cand.lake_index).name();
    original |= name == original_name;
    duplicate |= name == "the_duplicate";
  }
  EXPECT_FALSE(original && duplicate)
      << "both the table and its exact duplicate were kept";
}

TEST_P(DiscoverySweep, CandidatesSortedByScore) {
  RandomLakeCase c = MakeRandomLake(GetParam() * 41 + 9);
  GenT gent(*c.lake);
  auto candidates = Discovery(gent.index(), {}).FindCandidates(*c.source);
  ASSERT_TRUE(candidates.ok());
  for (size_t i = 1; i < candidates->size(); ++i) {
    EXPECT_GE((*candidates)[i - 1].score + 1e-12, (*candidates)[i].score);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DiscoverySweep, ::testing::Range(1, 15));

}  // namespace
}  // namespace gent
