// Randomized parity: the catalog-aware parallel ExpandEngine
// (src/matrix/expand.cc) must reproduce the reference expansion
// (tests/expand_reference.h — the pre-engine implementation, kept
// verbatim as the oracle) EXACTLY: same expanded tables (names, schemas,
// cells, row order — bit-identical), same expansion/drop counts, at any
// thread count, on both the catalog-backed path (candidates straight
// from Discovery, Candidate::stats set) and the sorted-set fallback
// (hand-built candidates, stats null), including empty-column and
// all-null edge cases.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "expand_reference.h"
#include "src/discovery/discovery.h"
#include "src/engine/column_stats_catalog.h"
#include "src/lake/data_lake.h"
#include "src/matrix/expand.h"
#include "src/table/table_builder.h"
#include "src/util/random.h"

namespace gent {
namespace {

bool SameExpansion(const ExpandResult& want, const ExpandResult& got,
                   std::string* why) {
  if (want.num_expanded != got.num_expanded) {
    *why = "num_expanded diverges";
    return false;
  }
  if (want.num_dropped != got.num_dropped) {
    *why = "num_dropped diverges";
    return false;
  }
  if (want.tables.size() != got.tables.size()) {
    *why = "table counts diverge";
    return false;
  }
  for (size_t i = 0; i < want.tables.size(); ++i) {
    if (want.tables[i].name() != got.tables[i].name()) {
      *why = "table " + std::to_string(i) + " names diverge: " +
             want.tables[i].name() + " vs " + got.tables[i].name();
      return false;
    }
    if (!TablesBitIdentical(want.tables[i], got.tables[i])) {
      *why = "table " + want.tables[i].name() + " cells diverge";
      return false;
    }
  }
  return true;
}

// Runs the engine at 1/2/8 threads against the oracle.
void ExpectParity(const Table& source, const std::vector<Candidate>& cands,
                  const std::string& label) {
  auto want = ref::RefExpand(source, cands);
  ASSERT_TRUE(want.ok()) << label << ": " << want.status().ToString();
  for (size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
    ExpandOptions options;
    options.num_threads = threads;
    auto got = Expand(source, cands, OpLimits{}, options);
    ASSERT_TRUE(got.ok()) << label << " threads=" << threads << ": "
                          << got.status().ToString();
    std::string why;
    EXPECT_TRUE(SameExpansion(*want, *got, &why))
        << label << " threads=" << threads << ": " << why;
  }
}

// A seeded lake with the join structure expansion exercises: a keyed hub
// (source key + foreign refs), keyless attribute tables reachable over
// the refs, sibling variants with null holes, low-keyness decoys, noise
// tables, and (sometimes) all-null columns or tables.
struct SeededLake {
  DictionaryPtr dict = MakeDictionary();
  Table source{"source", dict};
  DataLake lake{dict};
};

void BuildLake(SeededLake* out, Rng& rng) {
  const size_t rows = 8 + rng.Index(24);
  const size_t attrs = 1 + rng.Index(3);

  std::vector<std::string> source_cols = {"id"};
  for (size_t a = 0; a < attrs; ++a) {
    source_cols.push_back("attr" + std::to_string(a));
  }
  TableBuilder sb(out->dict, "source");
  sb.Columns(source_cols);
  for (size_t r = 0; r < rows; ++r) {
    std::vector<std::string> row = {"id" + std::to_string(r)};
    for (size_t a = 0; a < attrs; ++a) {
      row.push_back(rng.Bernoulli(0.08)
                        ? ""
                        : "a" + std::to_string(a) + "_" + std::to_string(r));
    }
    sb.Row(row);
  }
  out->source = sb.Key({"id"}).Build();

  // Keyed hub: id + ref (a near-unique FK into the attribute tables).
  TableBuilder hub(out->dict, "hub");
  hub.Columns({"id", "ref"});
  for (size_t r = 0; r < rows; ++r) {
    hub.Row({"id" + std::to_string(r),
             rng.Bernoulli(0.1) ? "" : "r" + std::to_string(r)});
  }
  ASSERT_TRUE(out->lake.AddTable(hub.Build()).ok());

  // Keyless attribute table(s) reachable over ref, carrying the source
  // attr values. A sibling variant gets complementary null holes.
  const int variants = rng.Bernoulli(0.6) ? 2 : 1;
  for (int variant = 0; variant < variants; ++variant) {
    TableBuilder ab(out->dict, variant == 0 ? "attrs" : "attrs_v2");
    std::vector<std::string> cols = {"ref"};
    for (size_t a = 0; a < attrs; ++a) {
      cols.push_back("attr" + std::to_string(a));
    }
    ab.Columns(cols);
    for (size_t r = 0; r < rows; ++r) {
      bool hole = ((r % 2 == 0) == (variant == 0)) && rng.Bernoulli(0.5);
      std::vector<std::string> row = {hole ? "" : "r" + std::to_string(r)};
      for (size_t a = 0; a < attrs; ++a) {
        row.push_back(rng.Bernoulli(0.1)
                          ? ""
                          : "a" + std::to_string(a) + "_" +
                                std::to_string(r));
      }
      ab.Row(row);
    }
    ASSERT_TRUE(out->lake.AddTable(ab.Build()).ok());
  }

  // Low-keyness decoy: covers the key but shares only a 2-value column.
  if (rng.Bernoulli(0.7)) {
    TableBuilder db(out->dict, "decoy");
    db.Columns({"id", "category"});
    for (size_t r = 0; r < rows; ++r) {
      db.Row({"id" + std::to_string(r), r % 2 == 0 ? "even" : "odd"});
    }
    ASSERT_TRUE(out->lake.AddTable(db.Build()).ok());
  }

  // Edge cases: an all-null column, sometimes an entirely null table.
  if (rng.Bernoulli(0.6)) {
    TableBuilder nb(out->dict, "nully");
    nb.Columns({"ref", "void"});
    for (size_t r = 0; r < rows; ++r) {
      nb.Row({rng.Bernoulli(0.8) ? "r" + std::to_string(r) : "", ""});
    }
    ASSERT_TRUE(out->lake.AddTable(nb.Build()).ok());
  }
  if (rng.Bernoulli(0.3)) {
    TableBuilder vb(out->dict, "void_table");
    vb.Columns({"v1", "v2"});
    for (size_t r = 0; r < 4; ++r) vb.Row({"", ""});
    ASSERT_TRUE(out->lake.AddTable(vb.Build()).ok());
  }

  // Unrelated noise.
  size_t noise = rng.Index(3);
  for (size_t t = 0; t < noise; ++t) {
    TableBuilder tb(out->dict, "noise" + std::to_string(t));
    tb.Columns({"x", "y"});
    for (size_t r = 0; r < 6; ++r) {
      tb.Row({rng.AlphaNum(6), rng.AlphaNum(6)});
    }
    ASSERT_TRUE(out->lake.AddTable(tb.Build()).ok());
  }
}

class ParitySweep : public ::testing::TestWithParam<int> {};

// Candidates straight from Discovery over a seeded lake: the engine's
// catalog-backed path (Candidate::stats set) must match the oracle at
// every thread count.
TEST_P(ParitySweep, DiscoveryBackedExpansionMatchesReference) {
  for (int trial = 0; trial < 3; ++trial) {
    SCOPED_TRACE("trial " + std::to_string(trial));
    Rng rng(GetParam() * 104729 + trial * 31 + 7);
    SeededLake seeded;
    BuildLake(&seeded, rng);
    if (::testing::Test::HasFatalFailure()) return;

    ColumnStatsCatalog catalog(seeded.lake);
    Discovery discovery(catalog, DiscoveryConfig{});
    auto candidates = discovery.FindCandidates(seeded.source);
    ASSERT_TRUE(candidates.ok());
    for (const Candidate& c : *candidates) {
      EXPECT_EQ(c.stats, &catalog);  // discovery wires the catalog in
    }
    ExpectParity(seeded.source, *candidates,
                 "catalog trial " + std::to_string(trial));
  }
}

// The same lakes with hand-built candidates (stats = null): the
// sorted-set fallback path must agree with the oracle too.
TEST_P(ParitySweep, FallbackExpansionMatchesReference) {
  for (int trial = 0; trial < 3; ++trial) {
    SCOPED_TRACE("trial " + std::to_string(trial));
    Rng rng(GetParam() * 84631 + trial * 17 + 3);
    SeededLake seeded;
    BuildLake(&seeded, rng);
    if (::testing::Test::HasFatalFailure()) return;

    // Candidates cloned straight off the lake: the keyed hub/decoy cover
    // the key (their id column carries the source key values), the rest
    // do not. No catalog attached anywhere.
    std::vector<Candidate> candidates;
    for (size_t t = 0; t < seeded.lake.size(); ++t) {
      Candidate c(seeded.lake.table(t).Clone());
      c.lake_index = t;
      c.covers_key = c.table.HasColumn("id");
      candidates.push_back(std::move(c));
    }
    ExpectParity(seeded.source, candidates,
                 "fallback trial " + std::to_string(trial));
  }
}

// Mixed: catalog-backed and ad-hoc candidates in one expansion (as a
// cross-shard merge would produce) — the per-candidate choice of stats
// source must not change results.
TEST_P(ParitySweep, MixedStatsSourcesMatchReference) {
  Rng rng(GetParam() * 65537 + 11);
  SeededLake seeded;
  BuildLake(&seeded, rng);
  if (::testing::Test::HasFatalFailure()) return;

  ColumnStatsCatalog catalog(seeded.lake);
  Discovery discovery(catalog, DiscoveryConfig{});
  auto candidates = discovery.FindCandidates(seeded.source);
  ASSERT_TRUE(candidates.ok());
  // Strip the catalog from every other candidate.
  for (size_t i = 0; i < candidates->size(); i += 2) {
    (*candidates)[i].stats = nullptr;
  }
  ExpectParity(seeded.source, *candidates, "mixed");
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParitySweep, ::testing::Range(0, 4));

TEST(ExpandParityEdge, EmptyCandidateList) {
  auto dict = MakeDictionary();
  Table source = TableBuilder(dict, "s")
                     .Columns({"id", "v"})
                     .Row({"a", "1"})
                     .Key({"id"})
                     .Build();
  ExpectParity(source, {}, "empty");
}

TEST(ExpandParityEdge, AllNullAndEmptyColumns) {
  auto dict = MakeDictionary();
  Table source = TableBuilder(dict, "s")
                     .Columns({"id", "v"})
                     .Row({"a", "1"})
                     .Row({"b", "2"})
                     .Row({"c", ""})
                     .Key({"id"})
                     .Build();
  std::vector<Candidate> candidates;
  {
    // Key-covering candidate with an all-null extra column.
    Candidate c(TableBuilder(dict, "keyed")
                    .Columns({"id", "v", "hollow"})
                    .Row({"a", "1", ""})
                    .Row({"b", "2", ""})
                    .Row({"c", "3", ""})
                    .Build());
    c.covers_key = true;
    candidates.push_back(std::move(c));
  }
  {
    // Keyless candidate whose only joinable column is all-null: no
    // edge, must be dropped identically by both implementations.
    Candidate c(TableBuilder(dict, "island")
                    .Columns({"id#raw", "w"})
                    .Row({"", "x"})
                    .Row({"", "y"})
                    .Build());
    c.covers_key = false;
    candidates.push_back(std::move(c));
  }
  ExpectParity(source, candidates, "all-null");
}

// A stats pointer whose lake table no longer matches the candidate's
// shape must be ignored (fallback), not trusted.
TEST(ExpandParityEdge, StaleStatsShapeFallsBack) {
  auto dict = MakeDictionary();
  Table source = TableBuilder(dict, "s")
                     .Columns({"id", "v"})
                     .Row({"a", "1"})
                     .Row({"b", "2"})
                     .Key({"id"})
                     .Build();
  DataLake lake(dict);
  ASSERT_TRUE(lake.AddTable(TableBuilder(dict, "tiny")
                                .Columns({"z"})
                                .Row({"q"})
                                .Build())
                  .ok());
  ColumnStatsCatalog catalog(lake);
  // Candidate claims lake index 0 but has a different shape entirely.
  Candidate c(TableBuilder(dict, "keyed")
                  .Columns({"id", "v"})
                  .Row({"a", "1"})
                  .Row({"b", "2"})
                  .Build());
  c.covers_key = true;
  c.lake_index = 0;
  c.stats = &catalog;
  std::vector<Candidate> candidates;
  candidates.push_back(std::move(c));
  ExpectParity(source, candidates, "stale-stats");
}

}  // namespace
}  // namespace gent
