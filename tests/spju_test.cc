// Tests for SPJU query trees and the Theorem 8 rewrite (src/ops/spju).
//
// The property sweeps are the executable form of the paper's Appendix A:
// on randomized minimal-form inputs, every SPJU query must evaluate to
// the same set of tuples under the native operators and under the
// {⊎, σ, π, κ, β} rewrite.

#include "src/ops/spju.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/ops/fusion.h"
#include "src/ops/unary.h"
#include "src/table/table_builder.h"
#include "src/util/random.h"

namespace gent {
namespace {

// Row-set equality plus schema equality: the theorem speaks about tables
// as sets of tuples over the same schema.
void ExpectSameRelation(const Table& a, const Table& b) {
  ASSERT_EQ(a.column_names(), b.column_names());
  EXPECT_EQ(RowsOf(a), RowsOf(b));
}

class SpjuFixture : public ::testing::Test {
 protected:
  SpjuFixture() : dict_(MakeDictionary()) {
    catalog_.Register(TableBuilder(dict_, "people")
                          .Columns({"id", "name", "city"})
                          .Row({"1", "smith", "boston"})
                          .Row({"2", "brown", "worcester"})
                          .Row({"3", "wang", "boston"})
                          .Build());
    catalog_.Register(TableBuilder(dict_, "cities")
                          .Columns({"city", "state"})
                          .Row({"boston", "ma"})
                          .Row({"worcester", "ma"})
                          .Row({"albany", "ny"})
                          .Build());
    catalog_.Register(TableBuilder(dict_, "more_people")
                          .Columns({"id", "name", "city"})
                          .Row({"4", "jones", "albany"})
                          .Build());
  }

  void ExpectEquivalent(const QueryPtr& q) {
    auto direct = EvaluateDirect(q, catalog_);
    auto rep = EvaluateRepresentative(q, catalog_);
    ASSERT_TRUE(direct.ok()) << direct.status().ToString();
    ASSERT_TRUE(rep.ok()) << rep.status().ToString();
    ExpectSameRelation(direct.value(), rep.value());
  }

  DictionaryPtr dict_;
  QueryCatalog catalog_;
};

TEST_F(SpjuFixture, BaseEvaluatesToCatalogTable) {
  auto result = EvaluateDirect(Base("people"), catalog_);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().num_rows(), 3u);
  EXPECT_FALSE(EvaluateDirect(Base("nope"), catalog_).ok());
}

TEST_F(SpjuFixture, ProjectAndSelect) {
  QueryPtr q = SelectEqQ(ProjectQ(Base("people"), {"name", "city"}),
                         "city", "boston");
  auto result = EvaluateDirect(q, catalog_);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().num_rows(), 2u);
  EXPECT_EQ(result.value().num_cols(), 2u);
  ExpectEquivalent(q);
}

TEST_F(SpjuFixture, SelectUnknownLiteralYieldsEmpty) {
  auto result = EvaluateDirect(SelectEqQ(Base("people"), "city", "nowhere"),
                               catalog_);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().num_rows(), 0u);
}

TEST_F(SpjuFixture, SelectUnknownColumnFails) {
  EXPECT_FALSE(
      EvaluateDirect(SelectEqQ(Base("people"), "zip", "02115"), catalog_)
          .ok());
}

TEST_F(SpjuFixture, InnerJoinLemma12) {
  ExpectEquivalent(JoinQ(Base("people"), Base("cities")));
}

TEST_F(SpjuFixture, LeftJoinLemma13) {
  // "albany" has no person: left join from cities keeps it null-padded.
  QueryPtr q = LeftJoinQ(Base("cities"), Base("people"));
  auto direct = EvaluateDirect(q, catalog_);
  ASSERT_TRUE(direct.ok());
  EXPECT_EQ(direct.value().num_rows(), 4u);  // 3 matches + unmatched albany
  ExpectEquivalent(q);
}

TEST_F(SpjuFixture, FullOuterJoinLemma14) {
  ExpectEquivalent(FullOuterQ(Base("cities"), Base("more_people")));
}

TEST_F(SpjuFixture, CrossProductLemma15) {
  // Disjoint schemas: project city-free people against states.
  QueryPtr q = CrossQ(ProjectQ(Base("people"), {"id", "name"}),
                      ProjectQ(Base("cities"), {"state"}));
  auto direct = EvaluateDirect(q, catalog_);
  ASSERT_TRUE(direct.ok());
  EXPECT_EQ(direct.value().num_rows(), 9u);
  ExpectEquivalent(q);
}

TEST_F(SpjuFixture, InnerUnionLemma11) {
  ExpectEquivalent(UnionQ(Base("people"), Base("more_people")));
}

TEST_F(SpjuFixture, CompositeQuery) {
  // (people ⋈ cities) selected to MA, unioned with more_people ⋈ cities.
  QueryPtr left = SelectEqQ(JoinQ(Base("people"), Base("cities")),
                            "state", "ma");
  QueryPtr right = JoinQ(Base("more_people"), Base("cities"));
  ExpectEquivalent(UnionQ(left, right));
}

TEST_F(SpjuFixture, QueryToStringRendersTree) {
  QueryPtr q = SelectEqQ(ProjectQ(JoinQ(Base("people"), Base("cities")),
                                  {"name", "state"}),
                         "state", "ma");
  EXPECT_EQ(QueryToString(q),
            "σ(state=ma, π(name,state, (people ⋈ cities)))");
}

TEST_F(SpjuFixture, RewriteToStringUsesOnlyRepresentativeOps) {
  QueryPtr q = FullOuterQ(Base("people"), Base("cities"));
  const std::string rewrite = RewriteToString(q);
  EXPECT_EQ(rewrite.find("⋈"), std::string::npos) << rewrite;
  EXPECT_EQ(rewrite.find("⟗"), std::string::npos) << rewrite;
  EXPECT_NE(rewrite.find("⊎"), std::string::npos) << rewrite;
  EXPECT_NE(rewrite.find("β"), std::string::npos) << rewrite;
}

TEST(ComplementationClosureTest, AddsMergesAndKeepsOriginals) {
  auto dict = MakeDictionary();
  Table t = TableBuilder(dict, "t")
                .Columns({"c", "a", "b"})
                .Row({"1", "x", ""})
                .Row({"1", "", "y"})
                .Build();
  auto closed = ComplementationClosure(t);
  ASSERT_TRUE(closed.ok());
  // Originals plus the merge (1, x, y).
  EXPECT_EQ(closed.value().num_rows(), 3u);
  RowSet rows = RowsOf(closed.value());
  std::vector<ValueId> merged = {dict->Lookup("1"), dict->Lookup("x"),
                                 dict->Lookup("y")};
  EXPECT_TRUE(rows.count(merged));
}

TEST(ComplementationClosureTest, OneToManyProducesAllMerges) {
  auto dict = MakeDictionary();
  Table t = TableBuilder(dict, "t")
                .Columns({"c", "a", "b"})
                .Row({"1", "x", ""})
                .Row({"1", "", "y"})
                .Row({"1", "", "z"})
                .Build();
  auto closed = ComplementationClosure(t);
  ASSERT_TRUE(closed.ok());
  // 3 originals + (1,x,y) + (1,x,z); (1,·,y) and (1,·,z) conflict on b.
  EXPECT_EQ(closed.value().num_rows(), 5u);
}

TEST(ComplementationClosureTest, FixpointOnNonComplementingTable) {
  auto dict = MakeDictionary();
  Table t = TableBuilder(dict, "t")
                .Columns({"a", "b"})
                .Row({"1", "x"})
                .Row({"2", "y"})
                .Build();
  auto closed = ComplementationClosure(t);
  ASSERT_TRUE(closed.ok());
  EXPECT_EQ(closed.value().num_rows(), 2u);
}

TEST(ComplementationClosureTest, RespectsRowBudget) {
  auto dict = MakeDictionary();
  TableBuilder builder(dict, "t");
  builder.Columns({"c", "a", "b"});
  for (int i = 0; i < 32; ++i) {
    builder.Row({"1", "x" + std::to_string(i), ""});
    builder.Row({"1", "", "y" + std::to_string(i)});
  }
  OpLimits limits;
  limits.MaxRows(100);
  auto closed = ComplementationClosure(builder.Build(), limits);
  EXPECT_FALSE(closed.ok());
  EXPECT_EQ(closed.status().code(), StatusCode::kOutOfRange);
}

// ---------------------------------------------------------------------------
// Randomized lemma sweeps.
//
// Each seed generates two random tables with a shared join column (values
// drawn from a small domain so joins hit), nulls injected into non-join
// columns, both reduced to minimal form (the theorem's precondition), and
// checks direct-vs-representative equality per lemma.

struct LemmaCase {
  int seed;
  QueryOp op;
};

class SpjuLemmaSweep : public ::testing::TestWithParam<LemmaCase> {};

std::string LemmaCaseName(const ::testing::TestParamInfo<LemmaCase>& info) {
  std::string op;
  switch (info.param.op) {
    case QueryOp::kInnerJoin: op = "Inner"; break;
    case QueryOp::kLeftJoin: op = "Left"; break;
    case QueryOp::kFullOuter: op = "FullOuter"; break;
    case QueryOp::kCross: op = "Cross"; break;
    case QueryOp::kInnerUnion: op = "Union"; break;
    default: op = "Op"; break;
  }
  return op + "Seed" + std::to_string(info.param.seed);
}

Table RandomMinimalTable(Rng& rng, const DictionaryPtr& dict,
                         const std::string& name,
                         const std::vector<std::string>& columns,
                         bool first_column_non_null) {
  TableBuilder builder(dict, name);
  builder.Columns(columns);
  const size_t rows = 2 + rng.Index(6);
  for (size_t r = 0; r < rows; ++r) {
    std::vector<std::string> row;
    for (size_t c = 0; c < columns.size(); ++c) {
      const bool allow_null = !(c == 0 && first_column_non_null);
      if (allow_null && rng.Bernoulli(0.2)) {
        row.push_back("");
      } else {
        // Small domain so join keys collide across tables.
        row.push_back("v" + std::to_string(rng.Index(4)));
      }
    }
    builder.Row(row);
  }
  auto minimal = TakeMinimalForm(builder.Build());
  EXPECT_TRUE(minimal.ok());
  return minimal.value();
}

TEST_P(SpjuLemmaSweep, DirectEqualsRepresentative) {
  const LemmaCase param = GetParam();
  Rng rng(static_cast<uint64_t>(param.seed) * 7919 + 13);
  auto dict = MakeDictionary();
  QueryCatalog catalog;
  const bool cross = param.op == QueryOp::kCross;
  const bool equal_schema = param.op == QueryOp::kInnerUnion;
  std::vector<std::string> left_cols = {"c", "a", "b"};
  std::vector<std::string> right_cols;
  if (cross) {
    right_cols = {"d", "e"};  // disjoint schemas
  } else if (equal_schema) {
    right_cols = left_cols;
  } else {
    right_cols = {"c", "d"};  // joins on "c"
  }
  catalog.Register(
      RandomMinimalTable(rng, dict, "L", left_cols,
                         /*first_column_non_null=*/!cross));
  catalog.Register(
      RandomMinimalTable(rng, dict, "R", right_cols,
                         /*first_column_non_null=*/!cross));

  QueryPtr q;
  switch (param.op) {
    case QueryOp::kInnerJoin: q = JoinQ(Base("L"), Base("R")); break;
    case QueryOp::kLeftJoin: q = LeftJoinQ(Base("L"), Base("R")); break;
    case QueryOp::kFullOuter: q = FullOuterQ(Base("L"), Base("R")); break;
    case QueryOp::kCross: q = CrossQ(Base("L"), Base("R")); break;
    case QueryOp::kInnerUnion: q = UnionQ(Base("L"), Base("R")); break;
    default: FAIL() << "unexpected op";
  }
  auto direct = EvaluateDirect(q, catalog);
  auto rep = EvaluateRepresentative(q, catalog);
  ASSERT_TRUE(direct.ok()) << direct.status().ToString();
  ASSERT_TRUE(rep.ok()) << rep.status().ToString();
  ASSERT_EQ(direct.value().column_names(), rep.value().column_names());
  EXPECT_EQ(RowsOf(direct.value()), RowsOf(rep.value()))
      << "seed " << param.seed << "\ndirect:\n"
      << direct.value().ToString() << "\nrepresentative:\n"
      << rep.value().ToString();
}

std::vector<LemmaCase> AllLemmaCases() {
  std::vector<LemmaCase> cases;
  for (QueryOp op : {QueryOp::kInnerJoin, QueryOp::kLeftJoin,
                     QueryOp::kFullOuter, QueryOp::kCross,
                     QueryOp::kInnerUnion}) {
    for (int seed = 1; seed <= 20; ++seed) cases.push_back({seed, op});
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Lemmas, SpjuLemmaSweep,
                         ::testing::ValuesIn(AllLemmaCases()),
                         LemmaCaseName);

// Composite random SPJU trees: σ/π over a join of L and R, unioned with
// another copy of the same shape — exercising operator nesting.
class SpjuCompositeSweep : public ::testing::TestWithParam<int> {};

TEST_P(SpjuCompositeSweep, DirectEqualsRepresentative) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 104729 + 7);
  auto dict = MakeDictionary();
  QueryCatalog catalog;
  catalog.Register(RandomMinimalTable(rng, dict, "L1", {"c", "a", "b"}, true));
  catalog.Register(RandomMinimalTable(rng, dict, "R1", {"c", "d"}, true));
  catalog.Register(RandomMinimalTable(rng, dict, "L2", {"c", "a", "b"}, true));
  catalog.Register(RandomMinimalTable(rng, dict, "R2", {"c", "d"}, true));

  QueryPtr chunk1 = ProjectQ(JoinQ(Base("L1"), Base("R1")), {"c", "a", "d"});
  QueryPtr chunk2 = ProjectQ(
      LeftJoinQ(Base("L2"), Base("R2")), {"c", "a", "d"});
  QueryPtr q = UnionQ(chunk1, chunk2);
  if (rng.Bernoulli(0.5)) q = SelectEqQ(q, "c", "v1");

  auto direct = EvaluateDirect(q, catalog);
  auto rep = EvaluateRepresentative(q, catalog);
  ASSERT_TRUE(direct.ok()) << direct.status().ToString();
  ASSERT_TRUE(rep.ok()) << rep.status().ToString();
  ASSERT_EQ(direct.value().column_names(), rep.value().column_names());
  EXPECT_EQ(RowsOf(direct.value()), RowsOf(rep.value()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, SpjuCompositeSweep, ::testing::Range(1, 25));

}  // namespace
}  // namespace gent
