// Property-based tests: algebraic invariants of the integration operators
// and the metrics, checked over seeded random table sweeps
// (TEST_P / INSTANTIATE_TEST_SUITE_P over seeds and shapes).

#include <gtest/gtest.h>

#include <algorithm>

#include "src/matrix/alignment_matrix.h"
#include "src/metrics/divergence.h"
#include "src/metrics/precision_recall.h"
#include "src/metrics/similarity.h"
#include "src/ops/fusion.h"
#include "src/ops/join.h"
#include "src/ops/unary.h"
#include "src/ops/union.h"
#include "src/table/table_builder.h"
#include "src/util/random.h"

namespace gent {
namespace {

struct Shape {
  uint64_t seed;
  size_t rows;
  size_t cols;
  double null_rate;
};

void PrintTo(const Shape& s, std::ostream* os) {
  *os << "seed" << s.seed << "_r" << s.rows << "_c" << s.cols << "_n"
      << static_cast<int>(s.null_rate * 100);
}

// Random table over a small value domain so duplicates, subsumptions and
// complementations actually occur.
Table RandomTable(const DictionaryPtr& dict, const Shape& shape,
                  const std::string& name, bool unique_key) {
  Rng rng(shape.seed);
  Table t(name, dict);
  for (size_t c = 0; c < shape.cols; ++c) {
    (void)t.AddColumn("c" + std::to_string(c));
  }
  std::vector<ValueId> row(shape.cols);
  for (size_t r = 0; r < shape.rows; ++r) {
    for (size_t c = 0; c < shape.cols; ++c) {
      if (c > 0 && rng.Bernoulli(shape.null_rate)) {
        row[c] = kNull;
      } else {
        row[c] = dict->Intern("v" + std::to_string(c) + "_" +
                              std::to_string(rng.Uniform(0, 5)));
      }
    }
    if (unique_key) row[0] = dict->Intern("k" + std::to_string(r));
    t.AddRow(row);
  }
  if (unique_key) (void)t.SetKeyColumns({0});
  return t;
}

class OperatorProperties : public ::testing::TestWithParam<Shape> {
 protected:
  DictionaryPtr dict_ = MakeDictionary();
};

// --- β properties -------------------------------------------------------------

TEST_P(OperatorProperties, SubsumptionIsIdempotent) {
  Table t = RandomTable(dict_, GetParam(), "t", false);
  Table once = Subsumption(t).value();
  Table twice = Subsumption(once).value();
  EXPECT_EQ(RowsOf(once), RowsOf(twice));
}

TEST_P(OperatorProperties, SubsumptionNeverGrows) {
  Table t = RandomTable(dict_, GetParam(), "t", false);
  EXPECT_LE(Subsumption(t)->num_rows(), t.num_rows());
}

TEST_P(OperatorProperties, SubsumptionOutputHasNoSubsumablePair) {
  Table t = RandomTable(dict_, GetParam(), "t", false);
  Table b = Subsumption(t).value();
  for (size_t i = 0; i < b.num_rows(); ++i) {
    for (size_t j = 0; j < b.num_rows(); ++j) {
      if (i == j) continue;
      EXPECT_FALSE(Subsumes(b.Row(i), b.Row(j)))
          << "row " << i << " subsumes row " << j;
    }
  }
}

// --- κ properties -------------------------------------------------------------

TEST_P(OperatorProperties, ComplementationOutputHasNoComplementingPair) {
  Table t = RandomTable(dict_, GetParam(), "t", false);
  Table k = Complementation(t).value();
  for (size_t i = 0; i < k.num_rows(); ++i) {
    for (size_t j = i + 1; j < k.num_rows(); ++j) {
      EXPECT_FALSE(Complements(k.Row(i), k.Row(j)));
    }
  }
}

TEST_P(OperatorProperties, ComplementationPreservesNonNullCells) {
  // Every non-null (row, value) association of the input survives in some
  // output tuple (complementation only fuses, never drops values).
  Table t = RandomTable(dict_, GetParam(), "t", false);
  Table k = Complementation(t).value();
  for (size_t r = 0; r < t.num_rows(); ++r) {
    auto row = t.Row(r);
    bool found = false;
    for (size_t kr = 0; kr < k.num_rows() && !found; ++kr) {
      auto krow = k.Row(kr);
      bool covers = true;
      for (size_t c = 0; c < row.size(); ++c) {
        covers &= row[c] == kNull || krow[c] == row[c];
      }
      found = covers;
    }
    EXPECT_TRUE(found) << "input row " << r << " lost";
  }
}

// --- Minimal form --------------------------------------------------------------

TEST_P(OperatorProperties, MinimalFormIsFixpoint) {
  Table t = RandomTable(dict_, GetParam(), "t", false);
  Table m = TakeMinimalForm(t).value();
  Table m2 = TakeMinimalForm(m).value();
  EXPECT_EQ(RowsOf(m), RowsOf(m2));
}

// --- ⊎ properties ----------------------------------------------------------------

TEST_P(OperatorProperties, OuterUnionIsCommutativeUpToRowOrder) {
  Shape s = GetParam();
  Table a = RandomTable(dict_, s, "a", false);
  s.seed ^= 0x9e3779b9;
  Table b = RandomTable(dict_, s, "b", false);
  Table ab = OuterUnion(a, b);
  Table ba = OuterUnion(b, a);
  // Same multiset of rows once projected onto the same column order.
  auto ba_proj = Project(ba, ab.column_names()).value();
  EXPECT_EQ(RowsOf(ab), RowsOf(ba_proj));
}

TEST_P(OperatorProperties, OuterUnionRowCountAdds) {
  Shape s = GetParam();
  Table a = RandomTable(dict_, s, "a", false);
  s.seed += 1;
  Table b = RandomTable(dict_, s, "b", false);
  EXPECT_EQ(OuterUnion(a, b).num_rows(), a.num_rows() + b.num_rows());
}

// --- Join properties ---------------------------------------------------------------

TEST_P(OperatorProperties, InnerJoinSubsetOfLeftJoinSubsetOfFull) {
  Shape s = GetParam();
  Table a = RandomTable(dict_, s, "a", true);
  s.seed ^= 0x51ef;
  Table b = RandomTable(dict_, s, "b", true);
  (void)b.RenameColumn(1 % b.num_cols(), "other");
  auto inner = NaturalJoin(a, b, JoinKind::kInner).value();
  auto left = NaturalJoin(a, b, JoinKind::kLeft).value();
  auto full = NaturalJoin(a, b, JoinKind::kFullOuter).value();
  auto inner_rows = RowsOf(inner);
  auto left_rows = RowsOf(left);
  auto full_rows = RowsOf(full);
  for (const auto& row : inner_rows) {
    EXPECT_EQ(left_rows.count(row), 1u);
  }
  for (const auto& row : left_rows) {
    EXPECT_EQ(full_rows.count(row), 1u);
  }
}

// --- Metric properties ----------------------------------------------------------------

TEST_P(OperatorProperties, EisBoundedAndMaximalOnSelf) {
  Table s = RandomTable(dict_, GetParam(), "s", true);
  Shape noisy = GetParam();
  noisy.seed ^= 0xbeef;
  Table r = RandomTable(dict_, noisy, "r", true);
  double self = EisScore(s, s.Clone()).value();
  double other = EisScore(s, r).value();
  EXPECT_DOUBLE_EQ(self, 1.0);
  EXPECT_GE(other, 0.0);
  EXPECT_LE(other, 1.0);
}

TEST_P(OperatorProperties, InstanceSimilarityNeverExceedsEisPlusErrors) {
  // EIS >= instance similarity − penalty is not a theorem, but both stay
  // in [0,1] and are 1/≥(1-nullrate-ish) on identical tables.
  Table s = RandomTable(dict_, GetParam(), "s", true);
  double inst = InstanceSimilarity(s, s.Clone()).value();
  EXPECT_GE(inst, 0.0);
  EXPECT_LE(inst, 1.0);
}

TEST_P(OperatorProperties, PrecisionRecallSymmetryOnSelf) {
  Table s = RandomTable(dict_, GetParam(), "s", true);
  auto pr = ComputePrecisionRecall(s, s.Clone());
  EXPECT_DOUBLE_EQ(pr.recall, 1.0);
  EXPECT_DOUBLE_EQ(pr.precision, 1.0);
}

TEST_P(OperatorProperties, KlNonNegative) {
  Table s = RandomTable(dict_, GetParam(), "s", true);
  Shape noisy = GetParam();
  noisy.seed ^= 0x77;
  Table r = RandomTable(dict_, noisy, "r", true);
  EXPECT_GE(ConditionalKlDivergence(s, r).value(), 0.0);
}

// --- Matrix/EIS agreement ----------------------------------------------------------

TEST_P(OperatorProperties, MatrixSimulationMatchesTableEis) {
  // For any key-covering candidate with the source's schema, the matrix
  // prediction equals the real EIS (the core soundness claim of §V-A3).
  Table s = RandomTable(dict_, GetParam(), "s", true);
  Shape noisy = GetParam();
  noisy.seed ^= 0xabcd;
  Table cand = RandomTable(dict_, noisy, "cand", false);
  // Give the candidate the source's key values so rows align.
  for (size_t r = 0; r < std::min(s.num_rows(), cand.num_rows()); ++r) {
    cand.set_cell(r, 0, s.cell(r, 0));
  }
  auto m = InitializeMatrix(s, cand);
  ASSERT_TRUE(m.ok());
  double predicted = EvaluateMatrixSimilarity(*m, s);
  double actual = EisScore(s, cand).value();
  EXPECT_NEAR(predicted, actual, 1e-9);
}

TEST_P(OperatorProperties, CombineMatricesNeverLowersSimilarity) {
  Table s = RandomTable(dict_, GetParam(), "s", true);
  Shape n1 = GetParam(), n2 = GetParam();
  n1.seed ^= 0x1111;
  n2.seed ^= 0x2222;
  Table c1 = RandomTable(dict_, n1, "c1", false);
  Table c2 = RandomTable(dict_, n2, "c2", false);
  for (size_t r = 0; r < std::min(s.num_rows(), c1.num_rows()); ++r) {
    c1.set_cell(r, 0, s.cell(r, 0));
  }
  for (size_t r = 0; r < std::min(s.num_rows(), c2.num_rows()); ++r) {
    c2.set_cell(r, 0, s.cell(r, 0));
  }
  auto m1 = InitializeMatrix(s, c1).value();
  auto m2 = InitializeMatrix(s, c2).value();
  double s1 = EvaluateMatrixSimilarity(m1, s);
  double s2 = EvaluateMatrixSimilarity(m2, s);
  double combined = EvaluateMatrixSimilarity(CombineMatrices(m1, m2), s);
  // Max-based evaluation: combining alternatives can only keep or improve
  // the best per-row alternative.
  EXPECT_GE(combined, std::max(s1, s2) - 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, OperatorProperties,
    ::testing::Values(Shape{1, 8, 3, 0.3}, Shape{2, 20, 4, 0.5},
                      Shape{3, 50, 5, 0.2}, Shape{4, 12, 2, 0.7},
                      Shape{5, 100, 6, 0.4}, Shape{6, 5, 4, 0.0},
                      Shape{7, 64, 3, 0.6}, Shape{8, 30, 8, 0.35}));

}  // namespace
}  // namespace gent
