// Reference semantics of the expansion stage (paper Algorithm 5) — the
// exact pre-ExpandEngine implementation, kept verbatim as the oracle for
// the randomized parity tests (tests/expand_parity_test.cc) and as the
// recorded cold-path baseline for bench_microops' expand section. This
// includes the old unordered_map build side of the natural join, so the
// oracle exercises none of the catalog-backed or flat-hash machinery it
// verifies. NOT part of the library: the production path is the
// catalog-aware ExpandEngine in src/matrix/expand.{h,cc}.

#ifndef GENT_TESTS_EXPAND_REFERENCE_H_
#define GENT_TESTS_EXPAND_REFERENCE_H_

#include <algorithm>
#include <cstdlib>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/lake/inverted_index.h"
#include "src/matrix/alignment_matrix.h"
#include "src/matrix/expand.h"
#include "src/ops/join.h"
#include "src/ops/unary.h"
#include "src/ops/union.h"
#include "src/table/table.h"
#include "src/util/status.h"

namespace gent::ref {

// The old unordered_map-build-side natural join (pre flat-hash rewrite of
// src/ops/join.cc), so expansion parity does not depend on the new join.
inline Result<Table> RefNaturalJoin(const Table& left, const Table& right,
                                    JoinKind kind, const OpLimits& limits) {
  const auto shared = SharedColumns(left, right);
  if (shared.empty() && kind == JoinKind::kInner) {
    return CrossProduct(left, right, limits);
  }

  std::vector<size_t> lshared, rshared;
  for (const auto& n : shared) {
    lshared.push_back(*left.ColumnIndex(n));
    rshared.push_back(*right.ColumnIndex(n));
  }
  std::vector<size_t> rextra;
  for (size_t rc = 0; rc < right.num_cols(); ++rc) {
    if (!left.HasColumn(right.column_name(rc))) rextra.push_back(rc);
  }

  Table out(left.name() + "⋈" + right.name(), left.dict());
  for (const auto& n : left.column_names()) {
    GENT_RETURN_IF_ERROR(out.AddColumn(n));
  }
  for (size_t rc : rextra) {
    GENT_RETURN_IF_ERROR(out.AddColumn(right.column_name(rc)));
  }

  std::unordered_map<KeyTuple, std::vector<size_t>, KeyTupleHash> rindex;
  rindex.reserve(right.num_rows());
  KeyTuple key(shared.size());
  auto key_of = [&](const Table& t, const std::vector<size_t>& cols,
                    size_t r) -> bool {
    for (size_t i = 0; i < cols.size(); ++i) {
      key[i] = t.cell(r, cols[i]);
      if (key[i] == kNull) return false;
    }
    return true;
  };
  for (size_t r = 0; r < right.num_rows(); ++r) {
    if (key_of(right, rshared, r)) rindex[key].push_back(r);
  }

  std::vector<bool> right_matched(right.num_rows(), false);
  std::vector<ValueId> row(out.num_cols());
  auto emit = [&](size_t lr, ptrdiff_t rr) {
    for (size_t lc = 0; lc < left.num_cols(); ++lc) {
      row[lc] = lr == SIZE_MAX ? kNull : left.cell(lr, lc);
    }
    if (lr == SIZE_MAX && rr >= 0) {
      for (size_t i = 0; i < lshared.size(); ++i) {
        row[lshared[i]] = right.cell(static_cast<size_t>(rr), rshared[i]);
      }
    }
    for (size_t i = 0; i < rextra.size(); ++i) {
      row[left.num_cols() + i] =
          rr < 0 ? kNull : right.cell(static_cast<size_t>(rr), rextra[i]);
    }
    out.AddRow(row);
  };

  for (size_t lr = 0; lr < left.num_rows(); ++lr) {
    GENT_RETURN_IF_ERROR(limits.Check(out.num_rows()));
    bool matched = false;
    if (key_of(left, lshared, lr)) {
      auto it = rindex.find(key);
      if (it != rindex.end()) {
        for (size_t rr : it->second) {
          emit(lr, static_cast<ptrdiff_t>(rr));
          right_matched[rr] = true;
          matched = true;
        }
      }
    }
    if (!matched && kind != JoinKind::kInner) {
      emit(lr, -1);
    }
  }
  if (kind == JoinKind::kFullOuter) {
    for (size_t rr = 0; rr < right.num_rows(); ++rr) {
      GENT_RETURN_IF_ERROR(limits.Check(out.num_rows()));
      if (!right_matched[rr]) emit(SIZE_MAX, static_cast<ptrdiff_t>(rr));
    }
  }
  return out;
}

struct RefJoinPair {
  size_t a_col = 0;
  size_t b_col = 0;
  double weight = 0.0;  // |Va ∩ Vb| / max(|Va|, |Vb|)
  size_t inter = 0;
};

// Distinct value sets per column, computed once per candidate — the old
// per-candidate hash-set rebuild the catalog-backed engine eliminates.
using RefColumnSets = std::vector<std::unordered_set<ValueId>>;

inline RefColumnSets RefComputeColumnSets(const Table& t) {
  RefColumnSets sets(t.num_cols());
  for (size_t c = 0; c < t.num_cols(); ++c) {
    sets[c] = DistinctColumnValues(t, c);
  }
  return sets;
}

inline std::optional<RefJoinPair> RefBestJoinPair(const RefColumnSets& a,
                                                  size_t rows_a,
                                                  const RefColumnSets& b,
                                                  size_t rows_b,
                                                  double threshold) {
  std::optional<RefJoinPair> best;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].empty()) continue;
    for (size_t j = 0; j < b.size(); ++j) {
      if (b[j].empty()) continue;
      size_t inter = SetIntersectionSize(a[i], b[j]);
      if (inter == 0) continue;
      double containment =
          static_cast<double>(inter) /
          static_cast<double>(std::max(a[i].size(), b[j].size()));
      double keyness = std::max(
          rows_a == 0 ? 0.0
                      : static_cast<double>(a[i].size()) /
                            static_cast<double>(rows_a),
          rows_b == 0 ? 0.0
                      : static_cast<double>(b[j].size()) /
                            static_cast<double>(rows_b));
      double w = containment * keyness;
      if (w < threshold) continue;
      if (!best || w > best->weight ||
          (w == best->weight && inter > best->inter)) {
        best = RefJoinPair{i, j, w, inter};
      }
    }
  }
  return best;
}

inline Result<Table> RefJoinOnPair(
    const Table& left, const Table& right, size_t left_col, size_t right_col,
    const std::unordered_set<std::string>& preserve_right,
    const OpLimits& limits) {
  Table l = left.Clone();
  Table r = right.Clone();
  for (size_t c = 0; c < r.num_cols(); ++c) {
    if (c == right_col) continue;
    const std::string& name = r.column_name(c);
    auto lc = l.ColumnIndex(name);
    if (!lc.has_value()) continue;
    if (preserve_right.count(name) > 0 && *lc != left_col) {
      std::string fresh = name + "#hop";
      while (r.HasColumn(fresh) || l.HasColumn(fresh)) fresh += "'";
      GENT_RETURN_IF_ERROR(l.RenameColumn(*lc, fresh));
    } else {
      std::string fresh = name + "#dup";
      while (r.HasColumn(fresh) || l.HasColumn(fresh)) fresh += "'";
      GENT_RETURN_IF_ERROR(r.RenameColumn(c, fresh));
    }
  }
  const std::string& join_name = l.column_name(left_col);
  if (r.column_name(right_col) != join_name) {
    if (r.HasColumn(join_name)) {
      return Status::Internal("join column collision");
    }
    GENT_RETURN_IF_ERROR(r.RenameColumn(right_col, join_name));
  }
  return RefNaturalJoin(l, r, JoinKind::kInner, limits);
}

// The pre-ExpandEngine Expand(), verbatim: per-candidate hash-set column
// sets, O(n²·cols²) hash-probed join-graph edges, serial path
// materialization.
inline Result<ExpandResult> RefExpand(const Table& source,
                                      const std::vector<Candidate>& candidates,
                                      const OpLimits& limits = {}) {
  constexpr double kJoinThreshold = 0.3;
  const size_t n = candidates.size();
  ExpandResult result;

  OpLimits join_limits = limits;
  join_limits.MaxRows(std::min<uint64_t>(limits.max_rows(), 200000));

  std::vector<RefColumnSets> sets;
  sets.reserve(n);
  std::vector<std::vector<std::string>> sorted_schemas;
  sorted_schemas.reserve(n);
  for (const auto& c : candidates) {
    sets.push_back(RefComputeColumnSets(c.table));
    sorted_schemas.push_back(c.table.column_names());
    std::sort(sorted_schemas.back().begin(), sorted_schemas.back().end());
  }

  struct Edge {
    size_t to;
    RefJoinPair pair;  // pair.a_col indexes the *from* table
  };
  std::vector<std::vector<Edge>> adj(n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      auto pair =
          RefBestJoinPair(sets[i], candidates[i].table.num_rows(), sets[j],
                          candidates[j].table.num_rows(), kJoinThreshold);
      if (!pair) continue;
      adj[i].push_back(Edge{j, *pair});
      adj[j].push_back(Edge{i, RefJoinPair{pair->b_col, pair->a_col,
                                           pair->weight, pair->inter}});
    }
  }

  constexpr double kHopPenalty = 0.25;
  auto best_path = [&](size_t start,
                       size_t forced_first) -> std::vector<size_t> {
    std::vector<double> cost(n, 1e18);
    std::vector<size_t> parent(n, SIZE_MAX);
    std::vector<bool> settled(n, false);
    size_t root = start;
    if (forced_first != SIZE_MAX) {
      root = forced_first;
      if (candidates[root].covers_key) return {start, root};
      settled[start] = true;
    }
    cost[root] = 0.0;
    size_t end_node = SIZE_MAX;
    while (true) {
      size_t node = SIZE_MAX;
      double bc = 1e18;
      for (size_t v = 0; v < n; ++v) {
        if (!settled[v] && cost[v] < bc) {
          bc = cost[v];
          node = v;
        }
      }
      if (node == SIZE_MAX) break;
      settled[node] = true;
      if (node != start && candidates[node].covers_key) {
        end_node = node;
        break;
      }
      for (const Edge& e : adj[node]) {
        double c = cost[node] + (1.0 - e.pair.weight) + kHopPenalty;
        if (c < cost[e.to]) {
          cost[e.to] = c;
          parent[e.to] = node;
        }
      }
    }
    if (end_node == SIZE_MAX) return {};
    std::vector<size_t> path;
    for (size_t cur = end_node; cur != SIZE_MAX; cur = parent[cur]) {
      path.push_back(cur);
    }
    if (forced_first != SIZE_MAX) path.push_back(start);
    std::reverse(path.begin(), path.end());
    return path;
  };

  auto build_expansion = [&](size_t ci, const std::vector<size_t>& path)
      -> std::optional<Table> {
    const Candidate& cand = candidates[ci];
    Table joined = candidates[path[0]].table.Clone();
    RefColumnSets joined_sets = sets[path[0]];
    for (size_t p = 1; p < path.size(); ++p) {
      size_t next = path[p];
      auto pair = RefBestJoinPair(joined_sets, joined.num_rows(), sets[next],
                                  candidates[next].table.num_rows(),
                                  kJoinThreshold);
      if (!pair) return std::nullopt;
      Table hop_table = candidates[next].table.Clone();
      for (size_t other = 0; other < n; ++other) {
        if (other == next || other == ci) continue;
        auto unioned = InnerUnion(hop_table, candidates[other].table);
        if (unioned.ok()) hop_table = std::move(unioned).value();
      }
      std::unordered_set<std::string> preserve(
          cand.table.column_names().begin(), cand.table.column_names().end());
      auto j = RefJoinOnPair(hop_table, joined, pair->b_col, pair->a_col,
                             preserve, join_limits);
      if (!j.ok()) return std::nullopt;
      joined = std::move(j).value();
      joined_sets = RefComputeColumnSets(joined);
    }
    if (joined.num_rows() == 0) return std::nullopt;
    for (size_t kc : source.key_columns()) {
      if (!joined.HasColumn(source.column_name(kc))) return std::nullopt;
    }
    std::vector<std::string> keep;
    for (size_t kc : source.key_columns()) {
      keep.push_back(source.column_name(kc));
    }
    for (const auto& name : cand.table.column_names()) {
      if (std::find(keep.begin(), keep.end(), name) == keep.end() &&
          joined.HasColumn(name)) {
        keep.push_back(name);
      }
    }
    auto projected = Project(joined, keep);
    if (!projected.ok()) return std::nullopt;
    joined = Distinct(*projected);

    {
      std::vector<size_t> key_cols;
      for (size_t kc : source.key_columns()) {
        key_cols.push_back(*joined.ColumnIndex(source.column_name(kc)));
      }
      KeyIndex source_keys = source.BuildKeyIndex();
      std::vector<std::pair<size_t, size_t>> align;
      KeyTuple key(key_cols.size());
      for (size_t r = 0; r < joined.num_rows(); ++r) {
        bool null_key = false;
        for (size_t k = 0; k < key_cols.size(); ++k) {
          key[k] = joined.cell(r, key_cols[k]);
          null_key |= key[k] == kNull;
        }
        if (null_key) continue;
        auto it = source_keys.find(key);
        if (it != source_keys.end()) align.emplace_back(r, it->second.front());
      }
      for (size_t c = 0; c < joined.num_cols(); ++c) {
        auto sc = source.ColumnIndex(joined.column_name(c));
        if (!sc.has_value() || source.IsKeyColumn(*sc)) continue;
        size_t both = 0, eq = 0;
        for (const auto& [jr, sr] : align) {
          ValueId jv = joined.cell(jr, c);
          ValueId sv = source.cell(sr, *sc);
          if (jv == kNull || sv == kNull) continue;
          ++both;
          eq += jv == sv;
        }
        if (both >= 3 &&
            static_cast<double>(eq) / static_cast<double>(both) < 0.15) {
          std::string neutral = "#mismapped_" + joined.column_name(c);
          while (joined.HasColumn(neutral)) neutral += "'";
          (void)joined.RenameColumn(c, neutral);
        }
      }
    }
    joined.set_name(cand.table.name() + "+expanded");
    return joined;
  };

  for (size_t i = 0; i < n; ++i) {
    const Candidate& cand = candidates[i];
    if (cand.covers_key) {
      result.tables.push_back(cand.table.Clone());
      continue;
    }
    constexpr size_t kMaxAlternativePaths = 4;
    std::vector<std::vector<size_t>> paths;
    auto add_path = [&](std::vector<size_t> p) {
      if (p.empty()) return;
      for (const auto& existing : paths) {
        if (existing == p) return;
      }
      paths.push_back(std::move(p));
    };
    add_path(best_path(i, SIZE_MAX));
    std::vector<const Edge*> neighbors;
    for (const Edge& e : adj[i]) neighbors.push_back(&e);
    std::sort(neighbors.begin(), neighbors.end(),
              [](const Edge* a, const Edge* b) {
                return a->pair.weight > b->pair.weight;
              });
    std::vector<const std::vector<std::string>*> used_hop_schemas;
    for (size_t k = 0;
         k < neighbors.size() && paths.size() < kMaxAlternativePaths; ++k) {
      size_t hop = neighbors[k]->to;
      const std::vector<std::string>& schema = sorted_schemas[hop];
      if (schema == sorted_schemas[i]) continue;
      bool seen = false;
      for (const auto* u : used_hop_schemas) seen = seen || *u == schema;
      if (seen) continue;
      used_hop_schemas.push_back(&schema);
      add_path(best_path(i, hop));
    }
    if (paths.empty()) {
      ++result.num_dropped;
      continue;
    }

    std::optional<Table> best_table;
    double best_score = -1.0;
    for (const auto& path : paths) {
      auto expansion = build_expansion(i, path);
      if (!expansion.has_value()) continue;
      auto matrix = InitializeMatrix(source, *expansion, MatrixOptions{});
      if (!matrix.ok()) continue;
      double score = EvaluateMatrixSimilarity(*matrix, source);
      if (score > best_score) {
        best_score = score;
        best_table = std::move(expansion);
      }
    }
    if (!best_table.has_value()) {
      ++result.num_dropped;
      continue;
    }
    result.tables.push_back(std::move(*best_table));
    ++result.num_expanded;
  }
  return result;
}

}  // namespace gent::ref

#endif  // GENT_TESTS_EXPAND_REFERENCE_H_
