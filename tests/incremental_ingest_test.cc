// Delta-parity harness for incremental shard ingest (DESIGN.md §5.12).
//
// The contract under test: a catalog grown by append — run-merge layer
// in RAM (ColumnStatsCatalog::WithAppended), delta runs on disk
// (AppendSnapshotDelta), or the service path (AppendTablesToLake) — is
// BIT-IDENTICAL to one built over all the tables at once, before and
// after compaction, for RAM and mapped backends, at every thread count.
// Randomized: lakes, split points, and batch counts are drawn from
// seeded RNGs, so every run sweeps fresh shapes deterministically.
//
// ServeWhileAppendingIsRaceFree doubles as the TSan target wired into
// CI's thread-sanitizer job: readers reclaim through the registry while
// appends and a compaction republish the shard under them.

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/engine/column_stats_catalog.h"
#include "src/engine/discovery_cache.h"
#include "src/engine/reclaim_service.h"
#include "src/gent/gent.h"
#include "src/lake/snapshot.h"
#include "src/table/table_builder.h"

namespace gent {
namespace {

class IncrementalIngestTest : public ::testing::Test {
 protected:
  IncrementalIngestTest() {
    dir_ = std::filesystem::temp_directory_path() /
           ("gent_ingest_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::create_directories(dir_);
  }
  ~IncrementalIngestTest() override {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }

  std::string Path(const std::string& name) const {
    return (dir_ / name).string();
  }

  // One random table. Values come from a small shared pool so tables
  // overlap (exercising the postings merge) with occasional fresh
  // strings (exercising dictionary growth across runs).
  Table MakeRandomTable(const DictionaryPtr& dict, const std::string& name,
                        std::mt19937& rng) {
    std::uniform_int_distribution<int> ncols(1, 4);
    std::uniform_int_distribution<int> nrows(0, 16);
    std::uniform_int_distribution<int> pool(0, 23);
    std::uniform_int_distribution<int> fresh(0, 9);
    const int cols = ncols(rng);
    TableBuilder b(dict, name);
    std::vector<std::string> col_names;
    for (int c = 0; c < cols; ++c) {
      col_names.push_back("c" + std::to_string(c));
    }
    b.Columns(col_names);
    const int rows = nrows(rng);
    for (int r = 0; r < rows; ++r) {
      std::vector<std::string> row;
      for (int c = 0; c < cols; ++c) {
        if (fresh(rng) == 0) {
          row.push_back(name + "_only_" + std::to_string(r) + "_" +
                        std::to_string(c));
        } else {
          row.push_back("pool" + std::to_string(pool(rng)));
        }
      }
      b.Row(row);
    }
    return b.Build();
  }

  std::vector<Table> MakeRandomTables(const DictionaryPtr& dict, size_t n,
                                      const std::string& prefix,
                                      std::mt19937& rng) {
    std::vector<Table> out;
    for (size_t i = 0; i < n; ++i) {
      out.push_back(MakeRandomTable(dict, prefix + std::to_string(i), rng));
    }
    return out;
  }

  // A sorted, deduplicated, null-free query set over pool values —
  // what OverlapCounts/SharesAnyValue expect.
  std::vector<ValueId> MakeQuerySet(const DictionaryPtr& dict,
                                    std::mt19937& rng) {
    std::uniform_int_distribution<int> nvals(1, 8);
    std::uniform_int_distribution<int> pool(0, 29);  // some miss the lake
    std::vector<ValueId> q;
    const int n = nvals(rng);
    for (int i = 0; i < n; ++i) {
      q.push_back(dict->Intern("pool" + std::to_string(pool(rng))));
    }
    std::sort(q.begin(), q.end());
    q.erase(std::unique(q.begin(), q.end()), q.end());
    return q;
  }

  // Full query-surface parity: every SortedValuesOf span, OverlapCounts
  // and SharesAnyValue over random query sets, TopKTables over a probe
  // table. EXPECT (not ASSERT) so one mismatch shows every divergence.
  void ExpectCatalogParity(const ColumnStatsCatalog& layered,
                           const ColumnStatsCatalog& rebuilt,
                           const DataLake& lake, const DictionaryPtr& dict,
                           std::mt19937& rng, const std::string& context) {
    ASSERT_EQ(layered.num_columns(), rebuilt.num_columns()) << context;
    for (size_t t = 0; t < lake.size(); ++t) {
      for (size_t c = 0; c < lake.table(t).num_cols(); ++c) {
        const ValueSpan a = layered.SortedValuesOf(t, c);
        const ValueSpan b = rebuilt.SortedValuesOf(t, c);
        ASSERT_EQ(a.size(), b.size()) << context << " t" << t << " c" << c;
        for (size_t i = 0; i < a.size(); ++i) {
          ASSERT_EQ(a[i], b[i]) << context << " t" << t << " c" << c;
        }
      }
    }
    for (int probe = 0; probe < 8; ++probe) {
      const std::vector<ValueId> q = MakeQuerySet(dict, rng);
      const ValueSpan qs(q.data(), q.size());
      EXPECT_EQ(layered.SharesAnyValue(qs), rebuilt.SharesAnyValue(qs))
          << context << " probe " << probe;
      const auto oa = layered.OverlapCounts(qs);
      const auto ob = rebuilt.OverlapCounts(qs);
      ASSERT_EQ(oa.size(), ob.size()) << context << " probe " << probe;
      for (size_t i = 0; i < oa.size(); ++i) {
        EXPECT_TRUE(oa[i].ref == ob[i].ref) << context << " probe " << probe;
        EXPECT_EQ(oa[i].count, ob[i].count) << context << " probe " << probe;
      }
    }
    TableBuilder probe(dict, "probe");
    probe.Columns({"p"});
    for (int i = 0; i < 10; ++i) {
      probe.Row({"pool" + std::to_string(i * 3 % 24)});
    }
    const Table pt = probe.Build();
    for (size_t k : {size_t{1}, size_t{3}, size_t{100}}) {
      EXPECT_EQ(layered.TopKTables(pt, k), rebuilt.TopKTables(pt, k))
          << context << " k=" << k;
    }
  }

  // Sources with known fragments in the lake, so service-level Reclaim
  // has real work: source s splits vertically into two fragments.
  void AddFragments(std::vector<Table>* tables, const DictionaryPtr& dict,
                    const std::string& tag) {
    TableBuilder sb(dict, "source_" + tag);
    sb.Columns({"k", "a", "b"});
    TableBuilder fa(dict, tag + "_frag_a");
    fa.Columns({"k", "a"});
    TableBuilder fb(dict, tag + "_frag_b");
    fb.Columns({"k", "b"});
    for (int r = 0; r < 10; ++r) {
      const std::string k = tag + "_k" + std::to_string(r);
      const std::string a = tag + "_a" + std::to_string(r % 5);
      const std::string b = tag + "_b" + std::to_string(r);
      sb.Row({k, a, b});
      fa.Row({k, a});
      fb.Row({k, b});
    }
    sources_.push_back(sb.Key({"k"}).Build());
    tables->push_back(fa.Build());
    tables->push_back(fb.Build());
  }

  static void ExpectResultsIdentical(const Result<ReclamationResult>& a,
                                     const Result<ReclamationResult>& b,
                                     const std::string& context) {
    ASSERT_EQ(a.ok(), b.ok()) << context << ": " << a.status().ToString()
                              << " vs " << b.status().ToString();
    if (!a.ok()) return;
    EXPECT_TRUE(TablesBitIdentical(a->reclaimed, b->reclaimed)) << context;
    EXPECT_EQ(a->originating_names, b->originating_names) << context;
    EXPECT_DOUBLE_EQ(a->predicted_eis, b->predicted_eis) << context;
  }

  std::vector<Table> sources_;
  std::filesystem::path dir_;
};

TEST_F(IncrementalIngestTest, ShardRouteTagProperties) {
  // Generation 0 is the bare uid: pre-ingest tags stay valid.
  EXPECT_EQ(ShardRouteTag(42, 0), 42u);
  EXPECT_EQ(ShardRouteTag(7, 0), 7u);
  // Appends move the tag; every generation is distinct.
  std::vector<uint64_t> tags;
  for (uint64_t g = 0; g < 16; ++g) tags.push_back(ShardRouteTag(42, g));
  for (size_t i = 0; i < tags.size(); ++i) {
    for (size_t j = i + 1; j < tags.size(); ++j) {
      EXPECT_NE(tags[i], tags[j]) << i << " vs " << j;
    }
  }
  // Deterministic, and uid still matters at every generation.
  EXPECT_EQ(ShardRouteTag(42, 3), ShardRouteTag(42, 3));
  EXPECT_NE(ShardRouteTag(42, 3), ShardRouteTag(43, 3));
}

// Randomized core property: base + K appended batches, served through
// the run-merge layer, is query-for-query bit-identical to one catalog
// built over the final lake.
TEST_F(IncrementalIngestTest, LayeredCatalogMatchesRebuilt) {
  for (uint32_t seed : {1u, 7u, 1234u, 99991u}) {
    std::mt19937 rng(seed);
    DictionaryPtr dict = MakeDictionary();
    std::uniform_int_distribution<size_t> ntables(2, 10);
    std::uniform_int_distribution<size_t> nbatches(1, 4);

    const size_t base_n = ntables(rng);
    const size_t batches = nbatches(rng);

    DataLake lake(dict);
    for (Table& t : MakeRandomTables(dict, base_n, "base", rng)) {
      ASSERT_TRUE(lake.AddTable(std::move(t)).ok());
    }
    std::shared_ptr<const ColumnStatsCatalog> layered =
        std::make_shared<ColumnStatsCatalog>(lake);

    for (size_t b = 0; b < batches; ++b) {
      const size_t first = lake.size();
      const size_t add = ntables(rng) / 2 + 1;
      for (Table& t : MakeRandomTables(
               dict, add, "batch" + std::to_string(b) + "_", rng)) {
        ASSERT_TRUE(lake.AddTable(std::move(t)).ok());
      }
      auto grown = ColumnStatsCatalog::WithAppended(layered, lake, first);
      ASSERT_TRUE(grown.ok()) << grown.status().ToString();
      layered = *grown;
    }
    EXPECT_EQ(layered->num_regions(), batches + 1);

    ColumnStatsCatalog rebuilt(lake);
    ExpectCatalogParity(*layered, rebuilt, lake, dict, rng,
                        "seed " + std::to_string(seed));
  }
}

// File-level parity: a v2 snapshot grown by AppendSnapshotDelta loads
// (and verifies) exactly like the lake it accreted, and the mapped open
// sees the runs.
TEST_F(IncrementalIngestTest, AppendedSnapshotLoadsLikeOneShot) {
  std::mt19937 rng(2024);
  DictionaryPtr dict = MakeDictionary();
  DataLake lake(dict);
  for (Table& t : MakeRandomTables(dict, 5, "base", rng)) {
    ASSERT_TRUE(lake.AddTable(std::move(t)).ok());
  }
  GenT base(lake);
  const std::string snap = Path("grow.snap");
  ASSERT_TRUE(
      SaveSnapshotV2(lake, base.catalog().section_views(), snap).ok());

  const size_t kRuns = 3;
  for (size_t b = 0; b < kRuns; ++b) {
    const size_t first = lake.size();
    for (Table& t : MakeRandomTables(dict, 2, "run" + std::to_string(b) + "_",
                                     rng)) {
      ASSERT_TRUE(lake.AddTable(std::move(t)).ok());
    }
    const auto run = ColumnStatsCatalog::BuildDeltaRun(lake, first);
    size_t runs_total = 0;
    ASSERT_TRUE(
        AppendSnapshotDelta(lake, first, run.views(), snap, &runs_total).ok());
    EXPECT_EQ(runs_total, b + 1);
  }
  ASSERT_TRUE(VerifySnapshotIntegrity(snap).ok());

  DataLake loaded;
  SnapshotLoadInfo info;
  ASSERT_TRUE(LoadSnapshot(loaded, snap, &info).ok());
  EXPECT_EQ(info.version, 2u);
  EXPECT_EQ(info.delta_runs, kRuns);
  EXPECT_TRUE(info.identity_remap);
  ASSERT_EQ(loaded.size(), lake.size());
  for (size_t i = 0; i < lake.size(); ++i) {
    EXPECT_TRUE(TablesBitIdentical(loaded.table(i), lake.table(i))) << i;
  }

  // Mapped open reads base + runs through the same merge layer.
  auto mapped = ColumnStatsCatalog::OpenMapped(loaded, snap, {});
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
  EXPECT_EQ((*mapped)->num_regions(), kRuns + 1);
  ColumnStatsCatalog rebuilt(lake);
  ExpectCatalogParity(**mapped, rebuilt, lake, dict, rng, "mapped");
}

// Compaction folds runs into base sections; content must be
// indistinguishable before and after, and a second fold is a no-op.
TEST_F(IncrementalIngestTest, CompactionPreservesParityAndIsIdempotent) {
  std::mt19937 rng(31337);
  DictionaryPtr dict = MakeDictionary();
  DataLake lake(dict);
  for (Table& t : MakeRandomTables(dict, 4, "base", rng)) {
    ASSERT_TRUE(lake.AddTable(std::move(t)).ok());
  }
  GenT base(lake);
  const std::string snap = Path("fold.snap");
  ASSERT_TRUE(
      SaveSnapshotV2(lake, base.catalog().section_views(), snap).ok());
  for (size_t b = 0; b < 2; ++b) {
    const size_t first = lake.size();
    for (Table& t : MakeRandomTables(dict, 2, "run" + std::to_string(b) + "_",
                                     rng)) {
      ASSERT_TRUE(lake.AddTable(std::move(t)).ok());
    }
    const auto run = ColumnStatsCatalog::BuildDeltaRun(lake, first);
    ASSERT_TRUE(AppendSnapshotDelta(lake, first, run.views(), snap).ok());
  }

  size_t folded = 0;
  ASSERT_TRUE(CompactSnapshotV2(snap, &folded).ok());
  EXPECT_EQ(folded, 2u);
  ASSERT_TRUE(VerifySnapshotIntegrity(snap).ok());

  DataLake loaded;
  SnapshotLoadInfo info;
  ASSERT_TRUE(LoadSnapshot(loaded, snap, &info).ok());
  EXPECT_EQ(info.delta_runs, 0u);  // folded into the base
  EXPECT_TRUE(info.identity_remap);
  ASSERT_EQ(loaded.size(), lake.size());
  for (size_t i = 0; i < lake.size(); ++i) {
    EXPECT_TRUE(TablesBitIdentical(loaded.table(i), lake.table(i))) << i;
  }
  auto mapped = ColumnStatsCatalog::OpenMapped(loaded, snap, {});
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
  EXPECT_EQ((*mapped)->num_regions(), 1u);
  ColumnStatsCatalog rebuilt(lake);
  ExpectCatalogParity(**mapped, rebuilt, lake, dict, rng, "compacted");

  folded = 99;
  ASSERT_TRUE(CompactSnapshotV2(snap, &folded).ok());
  EXPECT_EQ(folded, 0u);  // nothing to fold; file untouched
}

// Service-level parity: a shard grown by AppendTablesToLake answers
// every request bit-identically to a shard registered with all the
// tables at once — RAM and mapped backends, 1/2/8 threads, and again
// after online compaction.
TEST_F(IncrementalIngestTest, ServiceAppendMatchesOneShot) {
  std::mt19937 rng(555);
  DictionaryPtr dict = MakeDictionary();

  std::vector<Table> base_tables;
  AddFragments(&base_tables, dict, "t0");
  AddFragments(&base_tables, dict, "t1");
  std::vector<std::vector<Table>> batches;
  for (int b = 0; b < 3; ++b) {
    std::vector<Table> batch;
    AddFragments(&batch, dict, "g" + std::to_string(b));
    batch.push_back(MakeRandomTable(dict, "noise" + std::to_string(b), rng));
    batches.push_back(std::move(batch));
  }

  // Reference: everything registered at once, in RAM.
  DataLake all(dict);
  for (const auto& t : base_tables) ASSERT_TRUE(all.AddTable(t).ok());
  for (const auto& batch : batches) {
    for (const auto& t : batch) ASSERT_TRUE(all.AddTable(t).ok());
  }

  for (size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
    for (bool mapped : {false, true}) {
      ServiceOptions ref_opts;
      ref_opts.dict = dict;
      ref_opts.num_threads = threads;
      ref_opts.cache_capacity = 0;
      ReclaimService reference(std::move(ref_opts));
      {
        DataLake copy(all);
        ASSERT_TRUE(reference.AddLake("shard", std::move(copy)).ok());
      }

      ServiceOptions opts;
      opts.dict = dict;
      opts.num_threads = threads;
      opts.cache_capacity = 0;
      opts.storage.map_v2_snapshots = mapped;
      opts.storage.compact_after_runs = 0;  // explicit compaction below
      opts.health.auto_recover = false;
      ReclaimService grown(std::move(opts));

      const std::string ctx =
          "threads=" + std::to_string(threads) + " mapped=" + (mapped ? "y" : "n");
      if (mapped) {
        DataLake base(dict);
        for (const auto& t : base_tables) ASSERT_TRUE(base.AddTable(t).ok());
        GenT g(base);
        const std::string snap = Path("svc_" + std::to_string(threads) + ".snap");
        ASSERT_TRUE(
            SaveSnapshotV2(base, g.catalog().section_views(), snap).ok());
        ASSERT_TRUE(grown.AddLakeFromSnapshot("shard", snap).ok());
      } else {
        DataLake base(dict);
        for (const auto& t : base_tables) ASSERT_TRUE(base.AddTable(t).ok());
        ASSERT_TRUE(grown.AddLake("shard", std::move(base)).ok());
      }
      for (const auto& batch : batches) {
        std::vector<Table> copy = batch;
        ASSERT_TRUE(grown.AppendTablesToLake("shard", std::move(copy)).ok())
            << ctx;
      }

      ReclaimRequest named;
      named.lake = "shard";
      named.policy = RoutingPolicy::kNamedShard;
      ReclaimRequest fan;
      fan.policy = RoutingPolicy::kStatsPrefilter;
      for (const Table& source : sources_) {
        ExpectResultsIdentical(grown.Reclaim(source, named),
                               reference.Reclaim(source, named),
                               ctx + " named " + source.name());
        ExpectResultsIdentical(grown.Reclaim(source, fan),
                               reference.Reclaim(source, fan),
                               ctx + " fanout " + source.name());
      }

      if (mapped) {
        // Online compaction republishes bit-identical content.
        ASSERT_TRUE(grown.CompactShardSnapshot("shard").ok()) << ctx;
        for (const Table& source : sources_) {
          ExpectResultsIdentical(grown.Reclaim(source, named),
                                 reference.Reclaim(source, named),
                                 ctx + " compacted " + source.name());
        }
      } else {
        // RAM shards have nothing on disk to fold.
        EXPECT_EQ(grown.CompactShardSnapshot("shard").code(),
                  StatusCode::kInvalidArgument);
      }
    }
  }
}

// The discovery cache must never replay a pre-append result: an append
// bumps the shard's delta generation, which moves the route tag.
TEST_F(IncrementalIngestTest, AppendInvalidatesNamedRouteCache) {
  DictionaryPtr dict = MakeDictionary();
  std::vector<Table> base_tables;
  AddFragments(&base_tables, dict, "warm");

  ServiceOptions opts;
  opts.dict = dict;
  opts.cache_capacity = 64;
  ReclaimService service(std::move(opts));
  {
    DataLake base(dict);
    for (const auto& t : base_tables) ASSERT_TRUE(base.AddTable(t).ok());
    ASSERT_TRUE(service.AddLake("shard", std::move(base)).ok());
  }

  ReclaimRequest named;
  named.lake = "shard";
  named.policy = RoutingPolicy::kNamedShard;
  const Table& source = sources_.front();

  auto first = service.Reclaim(source, named);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  auto second = service.Reclaim(source, named);
  ASSERT_TRUE(second.ok());
  const auto warm = service.cache_stats();
  EXPECT_GE(warm.hits, 1u);  // identical request replayed from cache

  // Grow the shard with a better fragment pair for the same source:
  // a stale cache hit would keep answering without them.
  std::vector<Table> growth;
  {
    // Same key/value space as "warm" so the new fragments compete.
    TableBuilder fa(dict, "better_frag_a");
    fa.Columns({"k", "a"});
    TableBuilder fb(dict, "better_frag_b");
    fb.Columns({"k", "b"});
    for (int r = 0; r < 10; ++r) {
      const std::string k = "warm_k" + std::to_string(r);
      fa.Row({k, "warm_a" + std::to_string(r % 5)});
      fb.Row({k, "warm_b" + std::to_string(r)});
    }
    growth.push_back(fa.Build());
    growth.push_back(fb.Build());
  }
  ASSERT_TRUE(service.AppendTablesToLake("shard", std::move(growth)).ok());

  auto after = service.Reclaim(source, named);
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  const auto post = service.cache_stats();
  EXPECT_GT(post.misses, warm.misses)
      << "append must move the route tag (cache miss), not replay";

  // And the post-append result must match a cache-off service over the
  // same grown shard — i.e. the miss recomputed, not a stale replay.
  ServiceOptions cold_opts;
  cold_opts.dict = dict;
  cold_opts.cache_capacity = 0;
  ReclaimService cold(std::move(cold_opts));
  {
    DataLake grown(dict);
    for (const auto& t : base_tables) ASSERT_TRUE(grown.AddTable(t).ok());
    TableBuilder fa(dict, "better_frag_a");
    fa.Columns({"k", "a"});
    TableBuilder fb(dict, "better_frag_b");
    fb.Columns({"k", "b"});
    for (int r = 0; r < 10; ++r) {
      const std::string k = "warm_k" + std::to_string(r);
      fa.Row({k, "warm_a" + std::to_string(r % 5)});
      fb.Row({k, "warm_b" + std::to_string(r)});
    }
    ASSERT_TRUE(grown.AddTable(fa.Build()).ok());
    ASSERT_TRUE(grown.AddTable(fb.Build()).ok());
    ASSERT_TRUE(cold.AddLake("shard", std::move(grown)).ok());
  }
  ExpectResultsIdentical(after, cold.Reclaim(source, named), "post-append");
}

// Appending to a missing or concurrently-removed shard fails cleanly.
TEST_F(IncrementalIngestTest, AppendErrorPaths) {
  DictionaryPtr dict = MakeDictionary();
  ServiceOptions opts;
  opts.dict = dict;
  ReclaimService service(std::move(opts));

  std::mt19937 rng(1);
  std::vector<Table> batch;
  batch.push_back(MakeRandomTable(dict, "x", rng));
  EXPECT_EQ(service.AppendTablesToLake("nope", std::move(batch)).code(),
            StatusCode::kNotFound);
  EXPECT_EQ(service.AppendTablesToLake("nope", {}).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(service.CompactShardSnapshot("nope").code(),
            StatusCode::kNotFound);
}

// TSan target: requests keep flowing (and keep succeeding) while the
// shard is appended to and compacted underneath them. Readers pin a
// registry snapshot per call, so every answer is one consistent
// generation; the assertion here is freedom from races and torn state,
// with final-state parity checked after the dust settles.
TEST_F(IncrementalIngestTest, ServeWhileAppendingIsRaceFree) {
  std::mt19937 rng(777);
  DictionaryPtr dict = MakeDictionary();
  std::vector<Table> base_tables;
  AddFragments(&base_tables, dict, "live");

  DataLake base(dict);
  for (const auto& t : base_tables) ASSERT_TRUE(base.AddTable(t).ok());
  GenT g(base);
  const std::string snap = Path("live.snap");
  ASSERT_TRUE(SaveSnapshotV2(base, g.catalog().section_views(), snap).ok());

  ServiceOptions opts;
  opts.dict = dict;
  opts.num_threads = 2;
  opts.cache_capacity = 32;
  opts.storage.compact_after_runs = 0;  // compacted explicitly below
  opts.health.auto_recover = false;
  ReclaimService service(std::move(opts));
  ASSERT_TRUE(service.AddLakeFromSnapshot("shard", snap).ok());

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> served{0};
  std::atomic<uint64_t> failed{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < 4; ++r) {
    readers.emplace_back([&, r] {
      ReclaimRequest req;
      if (r % 2 == 0) {
        req.lake = "shard";
        req.policy = RoutingPolicy::kNamedShard;
      } else {
        req.policy = RoutingPolicy::kStatsPrefilter;
      }
      while (!stop.load(std::memory_order_acquire)) {
        auto res = service.Reclaim(sources_.front(), req);
        if (res.ok()) {
          served.fetch_add(1, std::memory_order_relaxed);
        } else {
          failed.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }

  const int kBatches = 5;
  DataLake shadow(dict);  // what the shard should hold at the end
  for (const auto& t : base_tables) ASSERT_TRUE(shadow.AddTable(t).ok());
  for (int b = 0; b < kBatches; ++b) {
    std::vector<Table> batch =
        MakeRandomTables(dict, 2, "live_b" + std::to_string(b) + "_", rng);
    for (const auto& t : batch) ASSERT_TRUE(shadow.AddTable(t).ok());
    ASSERT_TRUE(service.AppendTablesToLake("shard", std::move(batch)).ok())
        << "batch " << b;
    if (b == 2) {
      ASSERT_TRUE(service.CompactShardSnapshot("shard").ok());
    }
  }
  stop.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();

  EXPECT_EQ(failed.load(), 0u) << "queries failed during concurrent ingest";
  EXPECT_GT(served.load(), 0u);

  // After the churn, the shard answers like a fresh one-shot service.
  ServiceOptions ref_opts;
  ref_opts.dict = dict;
  ref_opts.cache_capacity = 0;
  ReclaimService reference(std::move(ref_opts));
  {
    DataLake copy(shadow);
    ASSERT_TRUE(reference.AddLake("shard", std::move(copy)).ok());
  }
  ReclaimRequest named;
  named.lake = "shard";
  named.policy = RoutingPolicy::kNamedShard;
  ExpectResultsIdentical(service.Reclaim(sources_.front(), named),
                         reference.Reclaim(sources_.front(), named), "final");

  // The on-disk snapshot also accreted everything durably.
  DataLake reloaded;
  SnapshotLoadInfo info;
  ASSERT_TRUE(LoadSnapshot(reloaded, snap, &info).ok());
  ASSERT_EQ(reloaded.size(), shadow.size());
  for (size_t i = 0; i < shadow.size(); ++i) {
    EXPECT_TRUE(TablesBitIdentical(reloaded.table(i), shadow.table(i))) << i;
  }
}

// The compact_after_runs policy folds in the background: after enough
// appends, the recovery thread compacts without an explicit call.
TEST_F(IncrementalIngestTest, BackgroundCompactionPolicy) {
  std::mt19937 rng(4242);
  DictionaryPtr dict = MakeDictionary();
  DataLake base(dict);
  for (Table& t : MakeRandomTables(dict, 3, "base", rng)) {
    ASSERT_TRUE(base.AddTable(std::move(t)).ok());
  }
  GenT g(base);
  const std::string snap = Path("policy.snap");
  ASSERT_TRUE(SaveSnapshotV2(base, g.catalog().section_views(), snap).ok());

  ServiceOptions opts;
  opts.dict = dict;
  opts.storage.compact_after_runs = 2;
  ReclaimService service(std::move(opts));
  ASSERT_TRUE(service.AddLakeFromSnapshot("shard", snap).ok());

  for (int b = 0; b < 2; ++b) {
    ASSERT_TRUE(
        service
            .AppendTablesToLake(
                "shard",
                MakeRandomTables(dict, 1, "p" + std::to_string(b) + "_", rng))
            .ok());
  }
  // The fold happens on the recovery thread; poll the file.
  SnapshotLoadInfo info;
  for (int spin = 0; spin < 200; ++spin) {
    DataLake probe;
    ASSERT_TRUE(LoadSnapshot(probe, snap, &info).ok());
    if (info.delta_runs == 0) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(25));
  }
  EXPECT_EQ(info.delta_runs, 0u) << "background compaction never ran";
}

}  // namespace
}  // namespace gent
